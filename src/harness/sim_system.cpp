#include "harness/sim_system.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "check/check.h"
#include "check/epoch_schedule.h"
#include "check/fault.h"
#include "common/assert.h"
#include "common/ckpt_io.h"
#include "harness/checkpoint.h"
#include "hydrogen/setpart_policy.h"
#include "policies/baseline.h"
#include "policies/hashcache.h"
#include "policies/integrated.h"
#include "policies/profess.h"
#include "policies/waypart.h"
#include "trace/trace_io.h"

namespace h2 {

std::unique_ptr<PartitionPolicy> make_policy(const DesignSpec& design) {
  switch (design.kind) {
    case DesignSpec::Kind::Baseline:
      return std::make_unique<BaselinePolicy>();
    case DesignSpec::Kind::WayPart:
      return std::make_unique<WayPartPolicy>(design.cpu_way_fraction);
    case DesignSpec::Kind::HAShCache:
      return std::make_unique<HAShCachePolicy>();
    case DesignSpec::Kind::Profess:
      return std::make_unique<ProfessPolicy>();
    case DesignSpec::Kind::Hydrogen:
      return std::make_unique<HydrogenPolicy>(design.hydrogen);
    case DesignSpec::Kind::SetPart: {
      SetPartConfig cfg;
      cfg.cpu_set_frac = design.hydrogen.fixed_cpu_capacity_frac;
      cfg.cpu_bw_frac = design.hydrogen.fixed_cpu_bw_frac;
      cfg.token = design.hydrogen.token;
      cfg.tok_frac = design.hydrogen.fixed_tok_frac;
      cfg.faucet_period = design.hydrogen.faucet_period;
      cfg.seed = design.hydrogen.seed;
      return std::make_unique<SetPartPolicy>(cfg);
    }
    case DesignSpec::Kind::Integrated:
      return std::make_unique<IntegratedPolicy>(design.integrated_cfg);
  }
  H2_ASSERT(false, "unknown design kind");
  return nullptr;
}

namespace {

u64 round_up(u64 v, u64 to) { return (v + to - 1) / to * to; }

/// Harness fault sites (check/fault.h): synthetic failures and stalls at an
/// epoch boundary, exercising the sweep runner's capture/retry/watchdog
/// paths. No-ops unless a matching fault is armed on this thread. Armed
/// with warmup_epochs > 0, the sites fire inside warmup epochs too —
/// tools/h2fault covers that path explicitly.
class FaultSiteObserver final : public EpochObserver {
 public:
  const char* name() const override { return "fault-sites"; }
  void on_epoch(SimSystem& sys, const EpochFeedback& fb) override {
    (void)sys;
    (void)fb;
    if (fault::at(fault::Kind::Throw)) fault::throw_synthetic(false);
    if (fault::at(fault::Kind::ThrowTransient)) fault::throw_synthetic(true);
    if (fault::at(fault::Kind::Stall)) fault::stall();
    // Hard kill, as from the OOM killer or a pulled plug: the process dies
    // at this epoch boundary without unwinding — the scenario the
    // checkpoint/restore seam exists for.
    if (fault::at(fault::Kind::KillAtEpoch)) fault::kill_process();
  }
};

/// Feeds the epoch snapshot to the policy and applies idealised instant
/// reconfiguration when the design asks for it (Fig. 7(b)).
class PolicyAdaptObserver final : public EpochObserver {
 public:
  const char* name() const override { return "policy-adapt"; }
  void on_epoch(SimSystem& sys, const EpochFeedback& fb) override {
    const bool changed = sys.policy().on_epoch(fb);
    if (changed && sys.hybrid().config().instant_reconfig) {
      sys.hybrid().run_instant_reconfig();
    }
  }
};

/// Applies a scripted reconfiguration schedule (check/epoch_schedule.h):
/// boundary i steps the policy by op i mod len, after PolicyAdaptObserver
/// has delivered the epoch feedback — the same ordering the differential
/// oracle uses, so an oracle-replayed schedule and a SimSystem run move the
/// partition through identical states. Honors instant_reconfig (Fig. 7(b));
/// otherwise the change propagates through the lazy-fixup path.
class ScheduleObserver final : public EpochObserver {
 public:
  explicit ScheduleObserver(const std::string& text)
      : schedule_(parse_schedule(text)) {}

  const char* name() const override { return "reconfig-schedule"; }

  void on_epoch(SimSystem& sys, const EpochFeedback& fb) override {
    const bool changed = apply_schedule_step(schedule_.at(idx_++), sys.policy());
    if (!changed) return;
    if (sys.hybrid().config().instant_reconfig) {
      sys.hybrid().run_instant_reconfig();
    }
    // Set-granular repartitions strand blocks in now-unreachable sets; the
    // eager flush sweep keeps the residency bijection intact (no-op for
    // way-partitioned designs).
    sys.hybrid().flush_stale_sets(fb.now);
  }

  void save_state(ckpt::CkptWriter& w) const override { w.put_u64(idx_); }
  void load_state(ckpt::CkptReader& r) override { idx_ = r.get_u64(); }

 private:
  EpochSchedule schedule_;
  u64 idx_ = 0;
};

/// Cheap O(1) counter-conservation audit at each epoch boundary; the full
/// structural audits run once at drain.
class CheckAuditObserver final : public EpochObserver {
 public:
  const char* name() const override { return "check-audits"; }
  void on_epoch(SimSystem& sys, const EpochFeedback& fb) override {
    if (H2_CHECK_ACTIVE(2)) sys.hybrid().audit_counters(fb.now);
  }
  void on_drain(SimSystem& sys, Cycle end) override {
    if (H2_CHECK_ACTIVE(2)) {
      sys.hybrid().audit(end, "end of experiment");
      sys.memory().audit(end);
    }
  }
};

/// The --timeline recorder: one CSV row per epoch boundary, phase-tagged, so
/// hydrogen's hill-climb reconfigurations (and every other design's epoch
/// dynamics) can be plotted over time. The header goes out at construction,
/// so even a run too short to cross an epoch boundary leaves a parseable
/// file.
class TimelineObserver final : public EpochObserver {
 public:
  explicit TimelineObserver(const std::string& path) : path_(path), out_(path) {
    if (!out_.is_open()) {
      throw std::runtime_error("cannot open timeline CSV '" + path + "'");
    }
    emit(
        "epoch,phase,cycle,cpu_instructions,gpu_instructions,weighted_ipc,"
        "cpu_misses,gpu_misses,gpu_migrations,slow_backlog,"
        "reconfigurations,cap,bw,tok\n");
  }

  const char* name() const override { return "timeline"; }

  void on_epoch(SimSystem& sys, const EpochFeedback& fb) override {
    u64 reconfigurations = 0, cap = 0, bw = 0, tok = 0;
    if (sys.design().kind == DesignSpec::Kind::Hydrogen) {
      const auto& hp = static_cast<const HydrogenPolicy&>(sys.policy());
      reconfigurations = hp.reconfigurations();
      const ParamPoint p = hp.active_point();
      cap = p.cap;
      bw = p.bw;
      tok = p.tok;
    }
    char row[320];
    std::snprintf(row, sizeof(row),
                  "%llu,%s,%llu,%llu,%llu,%.6f,%llu,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%llu\n",
                  static_cast<unsigned long long>(sys.total_epochs()),
                  sys.phase() == SimSystem::Phase::Warmup ? "warmup" : "measure",
                  static_cast<unsigned long long>(fb.now),
                  static_cast<unsigned long long>(fb.cpu_instructions),
                  static_cast<unsigned long long>(fb.gpu_instructions),
                  fb.weighted_ipc,
                  static_cast<unsigned long long>(fb.cpu_misses),
                  static_cast<unsigned long long>(fb.gpu_misses),
                  static_cast<unsigned long long>(fb.gpu_migrations),
                  static_cast<unsigned long long>(fb.slow_backlog),
                  static_cast<unsigned long long>(reconfigurations),
                  static_cast<unsigned long long>(cap),
                  static_cast<unsigned long long>(bw),
                  static_cast<unsigned long long>(tok));
    emit(row);
  }

  void on_drain(SimSystem& sys, Cycle end) override {
    (void)sys;
    (void)end;
    out_.flush();
  }

  // The byte history rides in the checkpoint so a restored run rewrites the
  // timeline file from scratch — byte-identical to an uninterrupted run even
  // though the killed process lost whatever it had already flushed.
  void save_state(ckpt::CkptWriter& w) const override { w.put_str(history_); }
  void load_state(ckpt::CkptReader& r) override {
    history_ = r.get_str();
    out_.close();
    out_.open(path_, std::ios::trunc);
    if (!out_.is_open()) {
      throw std::runtime_error("cannot reopen timeline CSV '" + path_ + "'");
    }
    out_ << history_;
  }

 private:
  void emit(const char* text) {
    history_ += text;
    out_ << text;
  }

  std::string path_;
  std::string history_;
  std::ofstream out_;
};

/// Requests an engine pause at every `every`-th epoch boundary; the phase
/// run loop then snapshots the paused system to cfg.checkpoint_path and
/// continues. Stateless: the cadence is derived from the (serialized) epoch
/// counter, so a restored run checkpoints on the same boundaries.
class CheckpointObserver final : public EpochObserver {
 public:
  explicit CheckpointObserver(u32 every) : every_(every == 0 ? 1 : every) {}

  const char* name() const override { return "checkpoint"; }

  void on_epoch(SimSystem& sys, const EpochFeedback& fb) override {
    (void)fb;
    if (sys.total_epochs() % every_ == 0) sys.request_checkpoint();
  }

 private:
  u32 every_;
};

}  // namespace

SimSystem::SimSystem(const ExperimentConfig& cfg) : cfg_(cfg) {}

SimSystem::~SimSystem() = default;

void SimSystem::build() {
  H2_ASSERT(phase_ == Phase::Unbuilt, "build() must be called exactly once");
  H2_ASSERT(!(cfg_.cpu_only && cfg_.gpu_only), "cpu_only and gpu_only are exclusive");
  const ComboSpec& cb = combo(cfg_.combo);

  // ---- workload layout: 8 CPU cores run the 4 workloads rate-2; all GPU
  // clusters decompose the single kernel over a shared footprint. ----------
  sys_ = cfg_.sys;
  // The private-cache arrays must match the processor configuration (core
  // count sweeps adjust sys.cpu_cores after building the SystemConfig).
  sys_.hierarchy.cpu_cores = sys_.cpu_cores;
  sys_.hierarchy.gpu_clusters = sys_.gpu_clusters();
  const u32 n_cpu = cfg_.cpu_only || !cfg_.gpu_only ? sys_.cpu_cores : 0;
  const u32 n_gpu = cfg_.gpu_only || !cfg_.cpu_only ? sys_.gpu_clusters() : 0;

  std::vector<Addr> bases;
  std::vector<Addr> gpu_bases;
  Addr cursor = 0;

  // Replay support: when trace_dir is set, cores consume recorded traces
  // (tools/h2trace output) instead of live synthetic generators.
  //
  // Solo runs (--cpu-only / --gpu-only) keep the exact shared-run address
  // map — every workload's footprint still advances the cursor — but skip
  // constructing the idle side's synthetic generators (each owns an RNG and
  // pattern state nothing would ever consume). Replay generators are still
  // constructed either way: the trace file is the only source of the
  // footprint the layout needs.
  auto make_generator = [&](const WorkloadSpec& spec, u64 seed, bool active,
                            u64* footprint) -> std::unique_ptr<AccessGenerator> {
    if (!cfg_.trace_dir.empty()) {
      const std::string path = cfg_.trace_dir + "/" + spec.name + ".trace";
      auto replay = std::make_unique<ReplayGenerator>(replay_from_file(spec.name, path));
      *footprint = replay->footprint_bytes();
      return replay;
    }
    *footprint = spec.footprint_bytes;
    if (!active && !cfg_.build_idle_generators) return nullptr;
    return std::make_unique<SyntheticGenerator>(spec, seed);
  };

  for (u32 i = 0; i < sys_.cpu_cores; ++i) {
    const WorkloadSpec& spec =
        cpu_workload_spec(cb.cpu[(i / 2) % cb.cpu.size()]);
    const WorkloadSpec scaled = with_scaled_footprint(spec, 1, sys_.scale);
    u64 footprint = 0;
    gens_.push_back(
        make_generator(scaled, mix_hash(cfg_.seed, 0x1000 + i), n_cpu != 0, &footprint));
    bases.push_back(cursor);
    cursor += round_up(footprint, cfg_.block_bytes);
  }
  // The GPU kernel's footprint is partitioned across clusters, mirroring how
  // workgroup scheduling assigns disjoint data tiles to different subslices:
  // each cluster streams its own slice, so GPU block reuse is short-range
  // and compulsory-dominated (the paper's Insight 2 — GPUs barely need fast
  // capacity — depends on this property).
  {
    const WorkloadSpec scaled =
        with_scaled_footprint(gpu_workload_spec(cb.gpu), 1, sys_.scale);
    WorkloadSpec slice = scaled;
    slice.footprint_bytes = std::max<u64>(
        256 * 1024, scaled.footprint_bytes / sys_.gpu_clusters());
    for (u32 i = 0; i < sys_.gpu_clusters(); ++i) {
      u64 footprint = 0;
      gens_.push_back(
          make_generator(slice, mix_hash(cfg_.seed, 0x2000 + i), n_gpu != 0, &footprint));
      gpu_bases.push_back(cursor);
      cursor += round_up(footprint, cfg_.block_bytes);
    }
  }

  // ---- memory geometry ----------------------------------------------------
  const u64 slow_capacity = round_up(cursor, cfg_.block_bytes);
  u64 fast_capacity = cfg_.fast_capacity_override
                          ? cfg_.fast_capacity_override
                          : static_cast<u64>(cfg_.fast_capacity_frac *
                                             static_cast<double>(slow_capacity));
  const u64 set_bytes = static_cast<u64>(cfg_.assoc) * cfg_.block_bytes;
  fast_capacity = std::max(set_bytes * 16, round_up(fast_capacity, set_bytes));

  MemSystemConfig mem_cfg = sys_.mem;
  if (cfg_.fast_channels) mem_cfg.fast_channels = cfg_.fast_channels;
  if (cfg_.slow_channels) mem_cfg.slow_channels = cfg_.slow_channels;
  mem_cfg.block_bytes = cfg_.block_bytes;
  mem_cfg.core_ghz = sys_.core_ghz;
  mem_cfg.backend = cfg_.backend;
  mem_cfg.ddr = cfg_.ddr;

  HybridMemConfig hm_cfg = sys_.hybrid;
  hm_cfg.mode = cfg_.mode;
  hm_cfg.block_bytes = cfg_.block_bytes;
  hm_cfg.assoc = cfg_.assoc;
  hm_cfg.fast_capacity_bytes = fast_capacity;
  hm_cfg.slow_capacity_bytes = slow_capacity;
  hm_cfg.ideal_swap = cfg_.design.ideal_swap;
  hm_cfg.instant_reconfig = cfg_.design.instant_reconfig;

  design_ = cfg_.design;
  if (design_.kind == DesignSpec::Kind::HAShCache) {
    mem_cfg.cpu_priority = true;
    if (design_.hashcache_native_geometry) {
      hm_cfg.assoc = 1;
      hm_cfg.chaining = true;
    } else if (hm_cfg.assoc == 1) {
      hm_cfg.chaining = true;
    } else {
      hm_cfg.chaining = false;
      hm_cfg.mc_overhead += 8;  // tag-walk latency for scaled associativity
    }
  }
  if (design_.kind == DesignSpec::Kind::Hydrogen) {
    design_.hydrogen.phase_length = cfg_.phase_cycles;
  }
  if (design_.kind == DesignSpec::Kind::Integrated) {
    // Coherent-NUMA integrated memory has no cache organisation: both tiers
    // form one flat space and pages move only by threshold migration.
    hm_cfg.mode = HybridMode::Flat;
    design_.integrated_cfg.block_bytes = static_cast<u32>(cfg_.block_bytes);
  }

  hierarchy_ = std::make_unique<CacheHierarchy>(sys_.hierarchy);
  mem_ = std::make_unique<MemorySystem>(mem_cfg);
  policy_ = make_policy(design_);
  hm_ = std::make_unique<HybridMemory>(hm_cfg, mem_.get(), policy_.get());

  // ---- cores ---------------------------------------------------------------
  auto add_core = [&](Requestor cls, u32 unit, Addr base, AccessGenerator* gen,
                      u64 target) {
    CoreParams p;
    p.cls = cls;
    p.unit = unit;
    p.addr_base = base;
    p.base_ipc = cls == Requestor::Cpu ? sys_.cpu_base_ipc : sys_.gpu_base_ipc;
    p.mlp = cls == Requestor::Cpu ? sys_.cpu_mlp : sys_.gpu_mlp;
    p.write_buffer = cls == Requestor::Cpu ? sys_.cpu_write_buffer : sys_.gpu_write_buffer;
    p.target_instructions = target;
    cores_.push_back(std::make_unique<Core>(p, gen, this));
    engine_.add_actor(cores_.back().get(), /*start=*/unit);  // stagger starts
  };

  if (n_cpu) {
    for (u32 i = 0; i < sys_.cpu_cores; ++i) {
      add_core(Requestor::Cpu, i, bases[i], gens_[i].get(),
               cfg_.cpu_target_instructions);
    }
  }
  if (n_gpu) {
    for (u32 i = 0; i < sys_.gpu_clusters(); ++i) {
      add_core(Requestor::Gpu, i, gpu_bases[i], gens_[sys_.cpu_cores + i].get(),
               cfg_.gpu_target_instructions);
    }
  }
  H2_ASSERT(!cores_.empty(), "no cores to run");

  engine_.add_periodic(cfg_.epoch_cycles,
                       [this](Cycle now) { on_epoch_boundary(now); });

  // Default observers, in the order the old epoch lambda ran these duties.
  observers_.push_back(std::make_unique<FaultSiteObserver>());
  observers_.push_back(std::make_unique<PolicyAdaptObserver>());
  if (!cfg_.reconfig_schedule.empty()) {
    observers_.push_back(std::make_unique<ScheduleObserver>(cfg_.reconfig_schedule));
  }
  observers_.push_back(std::make_unique<CheckAuditObserver>());
  if (!cfg_.timeline_path.empty()) {
    observers_.push_back(std::make_unique<TimelineObserver>(cfg_.timeline_path));
  }
  // Last, so a snapshot taken at its request has seen every other observer's
  // boundary side effects for that epoch.
  if (!cfg_.checkpoint_path.empty()) {
    observers_.push_back(std::make_unique<CheckpointObserver>(cfg_.checkpoint_every));
  }

  phase_ = Phase::Built;
}

void SimSystem::build(const ShardSlice& slice) {
  H2_ASSERT(phase_ == Phase::Unbuilt, "build() must be called exactly once");
  H2_ASSERT(!(cfg_.cpu_only && cfg_.gpu_only), "cpu_only and gpu_only are exclusive");
  H2_ASSERT(slice.num_shards >= 1 && slice.shard < slice.num_shards,
            "bad shard slice: shard %u of %u", slice.shard, slice.num_shards);
  member_ = true;
  slice_ = slice;
  const ComboSpec& cb = combo(cfg_.combo);

  // ---- workload layout: the member's cores keep their *global* identities
  // (workload pick, RNG seed, stagger offset) but pack their footprints into
  // a private local address space — shards are closed sub-simulations whose
  // only coupling is the merged epoch feedback. --------------------------
  sys_ = cfg_.sys;
  const u32 n_cpu_local =
      cfg_.gpu_only ? 0 : static_cast<u32>(slice.cpu_cores.size());
  const u32 n_gpu_local =
      cfg_.cpu_only ? 0 : static_cast<u32>(slice.gpu_clusters.size());
  // Private-cache arrays are sized by what this member actually runs.
  sys_.hierarchy.cpu_cores = std::max<u32>(1, static_cast<u32>(slice.cpu_cores.size()));
  sys_.hierarchy.gpu_clusters =
      std::max<u32>(1, static_cast<u32>(slice.gpu_clusters.size()));
  // The shared LLC is sliced with the address space: each member gets a
  // proportional share (never below one line per way).
  sys_.hierarchy.llc.size_bytes = std::max<u64>(
      sys_.hierarchy.llc.size_bytes / slice.num_shards,
      static_cast<u64>(sys_.hierarchy.llc.ways) * sys_.hierarchy.llc.line_bytes);

  auto make_generator = [&](const WorkloadSpec& spec, u64 seed, bool active,
                            u64* footprint) -> std::unique_ptr<AccessGenerator> {
    if (!cfg_.trace_dir.empty()) {
      const std::string path = cfg_.trace_dir + "/" + spec.name + ".trace";
      auto replay = std::make_unique<ReplayGenerator>(replay_from_file(spec.name, path));
      *footprint = replay->footprint_bytes();
      return replay;
    }
    *footprint = spec.footprint_bytes;
    if (!active && !cfg_.build_idle_generators) return nullptr;
    return std::make_unique<SyntheticGenerator>(spec, seed);
  };

  std::vector<Addr> bases;
  std::vector<Addr> gpu_bases;
  Addr cursor = 0;
  for (const u32 g : slice.cpu_cores) {
    const WorkloadSpec& spec = cpu_workload_spec(cb.cpu[(g / 2) % cb.cpu.size()]);
    const WorkloadSpec scaled = with_scaled_footprint(spec, 1, sys_.scale);
    u64 footprint = 0;
    gens_.push_back(make_generator(scaled, mix_hash(cfg_.seed, 0x1000 + g),
                                   n_cpu_local != 0, &footprint));
    bases.push_back(cursor);
    cursor += round_up(footprint, cfg_.block_bytes);
  }
  {
    // Per-cluster GPU slices are divided by the *global* cluster count: a
    // cluster streams the same tile here as it would in the monolithic
    // system, whichever shard it lands on.
    const WorkloadSpec scaled =
        with_scaled_footprint(gpu_workload_spec(cb.gpu), 1, sys_.scale);
    WorkloadSpec slice_spec = scaled;
    slice_spec.footprint_bytes = std::max<u64>(
        256 * 1024, scaled.footprint_bytes / cfg_.sys.gpu_clusters());
    for (const u32 g : slice.gpu_clusters) {
      u64 footprint = 0;
      gens_.push_back(make_generator(slice_spec, mix_hash(cfg_.seed, 0x2000 + g),
                                     n_gpu_local != 0, &footprint));
      gpu_bases.push_back(cursor);
      cursor += round_up(footprint, cfg_.block_bytes);
    }
  }

  // ---- memory geometry: capacity follows the member's own footprint, so
  // the fast:slow ratio every design reasons about is preserved per shard. --
  const u64 slow_capacity = round_up(std::max<Addr>(cursor, cfg_.block_bytes),
                                     cfg_.block_bytes);
  u64 fast_capacity =
      cfg_.fast_capacity_override
          ? cfg_.fast_capacity_override / slice.num_shards
          : static_cast<u64>(cfg_.fast_capacity_frac *
                             static_cast<double>(slow_capacity));
  const u64 set_bytes = static_cast<u64>(cfg_.assoc) * cfg_.block_bytes;
  fast_capacity = std::max(set_bytes * 16, round_up(fast_capacity, set_bytes));

  MemSystemConfig mem_cfg = sys_.mem;
  H2_ASSERT(slice.fast_channels > 0 && slice.slow_channels > 0,
            "shard slice with no channels (fast=%u slow=%u)",
            slice.fast_channels, slice.slow_channels);
  mem_cfg.fast_channels = slice.fast_channels;
  mem_cfg.slow_channels = slice.slow_channels;
  mem_cfg.block_bytes = cfg_.block_bytes;
  mem_cfg.core_ghz = sys_.core_ghz;
  mem_cfg.backend = cfg_.backend;
  mem_cfg.ddr = cfg_.ddr;

  HybridMemConfig hm_cfg = sys_.hybrid;
  hm_cfg.mode = cfg_.mode;
  hm_cfg.block_bytes = cfg_.block_bytes;
  hm_cfg.assoc = cfg_.assoc;
  hm_cfg.fast_capacity_bytes = fast_capacity;
  hm_cfg.slow_capacity_bytes = slow_capacity;
  hm_cfg.ideal_swap = cfg_.design.ideal_swap;
  hm_cfg.instant_reconfig = cfg_.design.instant_reconfig;

  design_ = cfg_.design;
  if (design_.kind == DesignSpec::Kind::HAShCache) {
    mem_cfg.cpu_priority = true;
    if (design_.hashcache_native_geometry) {
      hm_cfg.assoc = 1;
      hm_cfg.chaining = true;
    } else if (hm_cfg.assoc == 1) {
      hm_cfg.chaining = true;
    } else {
      hm_cfg.chaining = false;
      hm_cfg.mc_overhead += 8;
    }
  }
  if (design_.kind == DesignSpec::Kind::Hydrogen) {
    design_.hydrogen.phase_length = cfg_.phase_cycles;
  }
  if (design_.kind == DesignSpec::Kind::Integrated) {
    hm_cfg.mode = HybridMode::Flat;
    design_.integrated_cfg.block_bytes = static_cast<u32>(cfg_.block_bytes);
  }

  hierarchy_ = std::make_unique<CacheHierarchy>(sys_.hierarchy);
  mem_ = std::make_unique<MemorySystem>(mem_cfg);
  policy_ = make_policy(design_);
  hm_ = std::make_unique<HybridMemory>(hm_cfg, mem_.get(), policy_.get());

  // ---- cores: local unit index (hierarchy arrays), global stagger start ---
  auto add_core = [&](Requestor cls, u32 local, u32 global, Addr base,
                      AccessGenerator* gen, u64 target) {
    CoreParams p;
    p.cls = cls;
    p.unit = local;
    p.addr_base = base;
    p.base_ipc = cls == Requestor::Cpu ? sys_.cpu_base_ipc : sys_.gpu_base_ipc;
    p.mlp = cls == Requestor::Cpu ? sys_.cpu_mlp : sys_.gpu_mlp;
    p.write_buffer = cls == Requestor::Cpu ? sys_.cpu_write_buffer : sys_.gpu_write_buffer;
    p.target_instructions = target;
    cores_.push_back(std::make_unique<Core>(p, gen, this));
    engine_.add_actor(cores_.back().get(), /*start=*/global);
  };

  if (n_cpu_local) {
    for (u32 i = 0; i < slice.cpu_cores.size(); ++i) {
      add_core(Requestor::Cpu, i, slice.cpu_cores[i], bases[i], gens_[i].get(),
               cfg_.cpu_target_instructions);
    }
  }
  if (n_gpu_local) {
    for (u32 i = 0; i < slice.gpu_clusters.size(); ++i) {
      add_core(Requestor::Gpu, i, slice.gpu_clusters[i], gpu_bases[i],
               gens_[slice.cpu_cores.size() + i].get(),
               cfg_.gpu_target_instructions);
    }
  }
  H2_ASSERT(!cores_.empty(), "shard %u has no cores to run", slice.shard);

  engine_.add_periodic(cfg_.epoch_cycles,
                       [this](Cycle now) { on_epoch_boundary(now); });

  // Member observers only: fault sites, timeline and checkpointing are
  // group-level concerns (harness/shard_group.cpp) so they fire exactly once
  // per *group* boundary, in shard-independent order.
  observers_.push_back(std::make_unique<PolicyAdaptObserver>());
  if (!cfg_.reconfig_schedule.empty()) {
    observers_.push_back(std::make_unique<ScheduleObserver>(cfg_.reconfig_schedule));
  }
  observers_.push_back(std::make_unique<CheckAuditObserver>());

  phase_ = Phase::Built;
}

void SimSystem::add_observer(std::unique_ptr<EpochObserver> obs) {
  H2_ASSERT(phase_ != Phase::Unbuilt && phase_ != Phase::Drained,
            "add_observer() needs a built, undrained system");
  H2_ASSERT(obs != nullptr, "null observer");
  observers_.push_back(std::move(obs));
}

Cycle SimSystem::access(Cycle now, Requestor cls, u32 unit, Addr addr, bool write) {
  const HierarchyResult hr = cls == Requestor::Cpu
                                 ? hierarchy_->cpu_access(unit, addr, write)
                                 : hierarchy_->gpu_access(unit, addr, write);
  const Cycle t = now + hr.latency;
  if (!hr.memory_needed) return t;
  if (hr.writeback) hm_->writeback(t, cls, hr.writeback_addr);
  return hm_->access(t, cls, addr, write);
}

void SimSystem::on_epoch_boundary(Cycle now) {
  epochs_this_phase_++;
  total_epochs_++;

  u64 cpu_instr = 0, gpu_instr = 0;
  bool all_done = true;
  for (const auto& c : cores_) {
    if (c->cls() == Requestor::Cpu) {
      cpu_instr += c->retired_instructions();
    } else {
      gpu_instr += c->retired_instructions();
    }
    all_done = all_done && c->finished();
  }
  all_cores_finished_ = all_done;

  const HybridStats& sc = hm_->stats(Requestor::Cpu);
  const HybridStats& sg = hm_->stats(Requestor::Gpu);

  EpochFeedback fb;
  fb.now = now;
  fb.epoch_cycles = cfg_.epoch_cycles;
  fb.cpu_instructions = cpu_instr - prev_cpu_instr_;
  fb.gpu_instructions = gpu_instr - prev_gpu_instr_;
  fb.weighted_ipc = (cfg_.weight_cpu * static_cast<double>(fb.cpu_instructions) +
                     cfg_.weight_gpu * static_cast<double>(fb.gpu_instructions)) /
                    static_cast<double>(cfg_.epoch_cycles);
  fb.cpu_misses = sc.misses - prev_cpu_miss_;
  fb.gpu_misses = sg.misses - prev_gpu_miss_;
  fb.gpu_migrations = sg.migrations - prev_gpu_migr_;
  fb.slow_backlog = mem_->slow_backlog(now);

  prev_cpu_instr_ = cpu_instr;
  prev_gpu_instr_ = gpu_instr;
  prev_cpu_miss_ = sc.misses;
  prev_gpu_miss_ = sg.misses;
  prev_gpu_migr_ = sg.migrations;

  if (member_) {
    // Barrier point: park with the local snapshot pending. The group merges
    // all members' snapshots and feeds the observers via apply_epoch(); the
    // engine's stop-inside-hook semantics make the later resume
    // bit-identical to never having paused.
    pending_fb_ = fb;
    boundary_pause_ = true;
    engine_.stop();
    return;
  }

  for (auto& obs : observers_) obs->on_epoch(*this, fb);

  if (phase_ == Phase::Warmup) {
    // Warmup never terminates on completion — a side that reached its target
    // keeps replaying — it only pauses the engine at the requested boundary.
    if (epochs_this_phase_ >= warmup_target_) engine_.stop();
    return;
  }
  if (all_done) engine_.stop();
}

void SimSystem::reset_measurement() {
  for (auto& c : cores_) c->reset_measurement();
  hierarchy_->reset_stats();
  mem_->reset_stats();
  hm_->reset_measurement();
  policy_->reset_measurement();
  prev_cpu_instr_ = prev_gpu_instr_ = 0;
  prev_cpu_miss_ = prev_gpu_miss_ = prev_gpu_migr_ = 0;
  all_cores_finished_ = false;
}

bool SimSystem::phase_done() const {
  if (phase_ == Phase::Warmup) return epochs_this_phase_ >= warmup_target_;
  return all_cores_finished_;
}

void SimSystem::run_phase() {
  // The engine pauses for two distinct reasons: the phase terminated at an
  // epoch boundary, or the checkpoint observer asked for a snapshot. Handle
  // snapshots and keep running; with no checkpointing configured this
  // degenerates to a single engine_.run() call, bit-identical to the
  // historical phase loop. The checkpoint is taken *before* the termination
  // test so a snapshot requested at the final boundary still lands on disk
  // (and a restore from it resumes straight into drain()).
  for (;;) {
    if (phase_done()) {
      end_cycle_ = engine_.now();
      return;
    }
    const Cycle end = engine_.run(cfg_.max_cycles);
    if (ckpt_requested_) {
      ckpt_requested_ = false;
      do_checkpoint();
    } else if (!phase_done()) {
      // Horizon reached or event heap empty: the phase ends without its
      // boundary condition (max_cycles cap, or a workload that ran dry).
      end_cycle_ = end;
      return;
    }
  }
}

void SimSystem::do_checkpoint() { save_checkpoint(*this, cfg_.checkpoint_path); }

bool SimSystem::run_to_boundary() {
  H2_ASSERT(member_, "run_to_boundary() is a shard-member protocol call");
  H2_ASSERT(phase_ == Phase::Warmup || phase_ == Phase::Measure,
            "run_to_boundary() needs an open phase");
  boundary_pause_ = false;
  engine_.run(cfg_.max_cycles);
  return boundary_pause_;
}

void SimSystem::apply_epoch(const EpochFeedback& merged) {
  H2_ASSERT(member_ && boundary_pause_,
            "apply_epoch() needs a member paused at an epoch boundary");
  for (auto& obs : observers_) obs->on_epoch(*this, merged);
}

void SimSystem::member_begin_warmup(u32 epochs) {
  H2_ASSERT(member_ && phase_ == Phase::Built,
            "member_begin_warmup() must directly follow build(slice)");
  H2_ASSERT(epochs > 0, "member_begin_warmup() needs a warmup target");
  phase_ = Phase::Warmup;
  warmup_target_ = epochs;
  epochs_this_phase_ = 0;
}

void SimSystem::member_begin_measure() {
  H2_ASSERT(member_ && (phase_ == Phase::Built || phase_ == Phase::Warmup),
            "member_begin_measure() needs a built or warmed member");
  if (phase_ == Phase::Warmup) reset_measurement();
  phase_ = Phase::Measure;
  epochs_this_phase_ = 0;
  measure_start_ = engine_.now();
  measured_ = true;
  boundary_pause_ = false;
}

void SimSystem::member_end_phase() {
  H2_ASSERT(member_, "member_end_phase() is a shard-member protocol call");
  end_cycle_ = engine_.now();
  boundary_pause_ = false;
}

void SimSystem::warmup(u32 epochs) {
  H2_ASSERT(phase_ == Phase::Built, "warmup() must directly follow build()");
  if (epochs > 0) {
    phase_ = Phase::Warmup;
    warmup_target_ = epochs;
    epochs_this_phase_ = 0;
    run_phase();
    reset_measurement();
  }
  phase_ = Phase::Measure;
  epochs_this_phase_ = 0;
  measure_start_ = engine_.now();
}

void SimSystem::measure() {
  H2_ASSERT(phase_ == Phase::Measure && !measured_,
            "measure() must follow warmup() — call warmup(0) for a cold start");
  measured_ = true;
  run_phase();
}

void SimSystem::resume() {
  H2_ASSERT(phase_ == Phase::Warmup || phase_ == Phase::Measure,
            "resume() requires a load()ed checkpoint (phase warmup or measure)");
  if (phase_ == Phase::Warmup) {
    run_phase();
    reset_measurement();
    phase_ = Phase::Measure;
    epochs_this_phase_ = 0;
    measure_start_ = engine_.now();
  }
  measured_ = true;
  run_phase();
}

void SimSystem::save(ckpt::CkptWriter& w, const std::string& section_prefix) const {
  w.begin_section(section_prefix + "lifecycle");
  w.put_u8(static_cast<u8>(phase_));
  w.put_u64(prev_cpu_instr_);
  w.put_u64(prev_gpu_instr_);
  w.put_u64(prev_cpu_miss_);
  w.put_u64(prev_gpu_miss_);
  w.put_u64(prev_gpu_migr_);
  w.put_bool(all_cores_finished_);
  w.put_u32(warmup_target_);
  w.put_u64(epochs_this_phase_);
  w.put_u64(total_epochs_);
  w.put_u64(measure_start_);
  w.put_u64(end_cycle_);
  w.end_section();

  w.begin_section(section_prefix + "engine");
  engine_.save(w);
  w.end_section();

  w.begin_section(section_prefix + "generators");
  for (const auto& g : gens_) {
    if (g) g->save_state(w);  // solo runs skip the idle side, both ways
  }
  w.end_section();

  w.begin_section(section_prefix + "cores");
  for (const auto& c : cores_) c->save(w);
  w.end_section();

  w.begin_section(section_prefix + "cache-hierarchy");
  hierarchy_->save(w);
  w.end_section();

  w.begin_section(section_prefix + "memory-system");
  mem_->save(w);
  w.end_section();

  w.begin_section(section_prefix + "hybrid-memory");
  hm_->save(w);
  w.end_section();

  w.begin_section(section_prefix + "policy");
  policy_->save_state(w);
  w.end_section();

  w.begin_section(section_prefix + "observers");
  for (const auto& obs : observers_) obs->save_state(w);
  w.end_section();
}

void SimSystem::load(ckpt::CkptReader& r, const std::string& section_prefix) {
  H2_ASSERT(phase_ == Phase::Built, "load() requires a freshly built system");

  r.enter_section(section_prefix + "lifecycle");
  const u8 phase_tag = r.get_u8();
  if (phase_tag != static_cast<u8>(Phase::Warmup) &&
      phase_tag != static_cast<u8>(Phase::Measure)) {
    r.fail("checkpoint phase tag " + std::to_string(phase_tag) +
           " is not an epoch-boundary phase (warmup/measure)");
  }
  phase_ = static_cast<Phase>(phase_tag);
  // Members have no resume() — the group re-enters its barrier loop directly
  // — so a member restored mid-measurement is marked measured here.
  if (member_ && phase_ == Phase::Measure) measured_ = true;
  prev_cpu_instr_ = r.get_u64();
  prev_gpu_instr_ = r.get_u64();
  prev_cpu_miss_ = r.get_u64();
  prev_gpu_miss_ = r.get_u64();
  prev_gpu_migr_ = r.get_u64();
  all_cores_finished_ = r.get_bool();
  warmup_target_ = r.get_u32();
  epochs_this_phase_ = r.get_u64();
  total_epochs_ = r.get_u64();
  measure_start_ = r.get_u64();
  end_cycle_ = r.get_u64();
  r.leave_section();

  r.enter_section(section_prefix + "engine");
  engine_.load(r);
  r.leave_section();

  r.enter_section(section_prefix + "generators");
  for (auto& g : gens_) {
    if (g) g->load_state(r);
  }
  r.leave_section();

  r.enter_section(section_prefix + "cores");
  for (auto& c : cores_) c->load(r);
  r.leave_section();

  r.enter_section(section_prefix + "cache-hierarchy");
  hierarchy_->load(r);
  r.leave_section();

  r.enter_section(section_prefix + "memory-system");
  mem_->load(r);
  r.leave_section();

  r.enter_section(section_prefix + "hybrid-memory");
  hm_->load(r);
  r.leave_section();

  r.enter_section(section_prefix + "policy");
  policy_->restore_state(r);
  r.leave_section();

  r.enter_section(section_prefix + "observers");
  for (auto& obs : observers_) obs->load_state(r);
  r.leave_section();
}

ExperimentResult SimSystem::drain() {
  H2_ASSERT(phase_ == Phase::Measure && measured_, "drain() must follow measure()");
  phase_ = Phase::Drained;

  // The DDR backend buffers posted writes and applies refresh lazily; flush
  // them so the audits below see pending == 0 and the extracted energy
  // includes the drained bursts. The fast backend stays untouched — its
  // historical numbers never included a trailing refresh catch-up, and the
  // fig05 golden pins that behaviour.
  if (cfg_.backend == ChannelBackendKind::Ddr) mem_->drain_backends(end_cycle_);

  // Final audits (and timeline flush) before extraction; `end_cycle_` is
  // absolute because audits compare against absolute channel cursors.
  for (auto& obs : observers_) obs->on_drain(*this, end_cycle_);

  ExperimentResult res;
  res.combo = cfg_.combo;
  res.design = design_.label;
  res.epochs = epochs_this_phase_;
  res.engine_steps = engine_.steps_executed();

  // All recorded cycle counts are measurement-window-relative; with
  // warmup_epochs == 0 the window starts at cycle 0 and every expression
  // below degenerates to the historical cold-start arithmetic.
  const Cycle end = end_cycle_ - measure_start_;
  res.end_cycle = end;

  // Instruction counts are capped at the target: a side that finished early
  // keeps replaying to preserve contention, but those extra instructions
  // must not inflate its IPC (they retired after its recorded cycle count).
  res.cpu_finished = true;
  res.gpu_finished = true;
  for (const auto& c : cores_) {
    const Cycle done = c->finished() ? c->done_cycle() - measure_start_ : end;
    const u64 instructions =
        std::min(c->retired_instructions(), c->params().target_instructions);
    if (c->cls() == Requestor::Cpu) {
      res.cpu_cycles = std::max(res.cpu_cycles, done);
      res.cpu_instructions += instructions;
      res.cpu_finished = res.cpu_finished && c->finished();
    } else {
      res.gpu_cycles = std::max(res.gpu_cycles, done);
      res.gpu_instructions += instructions;
      res.gpu_finished = res.gpu_finished && c->finished();
    }
  }
  if (res.cpu_cycles > 0) {
    res.cpu_ipc = static_cast<double>(res.cpu_instructions) /
                  static_cast<double>(res.cpu_cycles);
  }
  if (res.gpu_cycles > 0) {
    res.gpu_ipc = static_cast<double>(res.gpu_instructions) /
                  static_cast<double>(res.gpu_cycles);
  }
  res.weighted_ipc = cfg_.weight_cpu * res.cpu_ipc + cfg_.weight_gpu * res.gpu_ipc;

  // Dynamic counters were zeroed at the window start and static energy is
  // linear in elapsed cycles, so charging the window duration yields exactly
  // the measurement window's energy.
  res.energy_pj = mem_->total_energy_pj(end);
  res.fast_bytes = mem_->tier_bytes(Tier::Fast);
  res.slow_bytes = mem_->tier_bytes(Tier::Slow);
  res.hmstats[0] = hm_->stats(Requestor::Cpu);
  res.hmstats[1] = hm_->stats(Requestor::Gpu);
  res.fast_hit_rate[0] = hm_->hit_rate(Requestor::Cpu);
  res.fast_hit_rate[1] = hm_->hit_rate(Requestor::Gpu);
  res.llc_hit_rate[0] = hierarchy_->llc_hit_rate(Requestor::Cpu);
  res.llc_hit_rate[1] = hierarchy_->llc_hit_rate(Requestor::Gpu);
  res.remap_cache_hit_rate = hm_->remap_cache().hit_rate();
  {
    // Merge per-core read-latency distributions into per-side summaries.
    u64 n[2] = {0, 0}, sum[2] = {0, 0}, p99[2] = {0, 0};
    for (const auto& c : cores_) {
      const u32 i = static_cast<u32>(c->cls());
      n[i] += c->read_latency().count();
      sum[i] += c->read_latency().total();
      p99[i] = std::max(p99[i], c->read_latency().percentile(99));
    }
    for (u32 i = 0; i < 2; ++i) {
      res.read_latency_mean[i] = n[i] ? static_cast<double>(sum[i]) / n[i] : 0.0;
      res.read_latency_p99[i] = p99[i];
    }
  }
  const u64 demand = res.hmstats[0].demand + res.hmstats[1].demand;
  if (demand > 0) {
    res.slow_amplification =
        static_cast<double>(res.slow_bytes) / (static_cast<double>(demand) * 64.0);
  }
  if (design_.kind == DesignSpec::Kind::Hydrogen) {
    const auto& hp = static_cast<const HydrogenPolicy&>(*policy_);
    res.final_point = hp.active_point();
    res.reconfigurations = hp.reconfigurations();
  }
  return res;
}

}  // namespace h2
