#include "policies/profess.h"

#include <algorithm>

#include "common/ckpt_io.h"

namespace h2 {

ProfessPolicy::ProfessPolicy(const ProfessConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  p_[0] = p_[1] = cfg.p_init;
}

bool ProfessPolicy::allow_migration(const PolicyContext& ctx, bool victim_dirty) {
  // Dirty victims double the migration cost; MDM is correspondingly more
  // reluctant (one extra coin flip at the same probability).
  const double p = p_[static_cast<u32>(ctx.cls)];
  if (!rng_.chance(p)) return false;
  if (victim_dirty && !rng_.chance(std::min(1.0, p + 0.2))) return false;
  return true;
}

void ProfessPolicy::note_hit(const PolicyContext& ctx, u32 way) {
  (void)way;
  hits_[static_cast<u32>(ctx.cls)]++;
  accesses_[static_cast<u32>(ctx.cls)]++;
}

void ProfessPolicy::note_miss(const PolicyContext& ctx, bool migrated) {
  (void)migrated;
  accesses_[static_cast<u32>(ctx.cls)]++;
}

bool ProfessPolicy::on_epoch(const EpochFeedback& fb) {
  const double congested_threshold =
      cfg_.backlog_per_channel_hi * std::max<u32>(1, num_channels_);
  const bool congested = static_cast<double>(fb.slow_backlog) > congested_threshold;

  for (u32 r = 0; r < 2; ++r) {
    const double hr = accesses_[r]
                          ? static_cast<double>(hits_[r]) / static_cast<double>(accesses_[r])
                          : prev_hit_rate_[r];
    // Benefit: a rising (or high) hit rate means migrations are paying off.
    const bool improving = hr >= prev_hit_rate_[r] - 0.01;
    double p = p_[r];
    if (congested && !improving) {
      p -= cfg_.step;  // migrations amplify traffic without return
    } else if (improving && hr > 0.3) {
      p += cfg_.step / 2;
    }
    const double floor = r == 0 ? cfg_.p_min_cpu : cfg_.p_min;
    p_[r] = std::clamp(p, floor, cfg_.p_max);
    prev_hit_rate_[r] = hr;
    hits_[r] = 0;
    accesses_[r] = 0;
  }

  // Fairness: nudge migration budget toward the side with the lower
  // weighted throughput share.
  const double cpu_share = cfg_.weight_cpu * static_cast<double>(fb.cpu_instructions);
  const double gpu_share = cfg_.weight_gpu * static_cast<double>(fb.gpu_instructions);
  if (cpu_share + gpu_share > 0) {
    const u32 loser = cpu_share < gpu_share ? 0u : 1u;
    const u32 winner = 1u - loser;
    const double loser_floor = loser == 0 ? cfg_.p_min_cpu : cfg_.p_min;
    const double winner_floor = winner == 0 ? cfg_.p_min_cpu : cfg_.p_min;
    p_[loser] = std::clamp(p_[loser] + cfg_.step / 2, loser_floor, cfg_.p_max);
    p_[winner] = std::clamp(p_[winner] - cfg_.step / 4, winner_floor, cfg_.p_max);
  }
  return false;  // mapping never changes; no reconfiguration needed
}

void ProfessPolicy::save_state(ckpt::CkptWriter& w) const {
  rng_.save(w);
  for (u32 i = 0; i < 2; ++i) {
    w.put_f64(p_[i]);
    w.put_u64(hits_[i]);
    w.put_u64(accesses_[i]);
    w.put_f64(prev_hit_rate_[i]);
  }
}

void ProfessPolicy::load_state(ckpt::CkptReader& r) {
  rng_.load(r);
  for (u32 i = 0; i < 2; ++i) {
    p_[i] = r.get_f64();
    hits_[i] = r.get_u64();
    accesses_[i] = r.get_u64();
    prev_hit_rate_[i] = r.get_f64();
  }
}

}  // namespace h2
