#include "policies/waypart.h"

#include <algorithm>
#include <cmath>

namespace h2 {

void WayPartPolicy::bind(u32 num_channels, u32 assoc, u32 num_sets) {
  PartitionPolicy::bind(num_channels, assoc, num_sets);
  if (assoc < 2) {
    cpu_ways_ = assoc;
    return;
  }
  // Round to the nearest way count, but leave at least one way per side.
  const u32 raw = static_cast<u32>(std::lround(cpu_way_fraction_ * assoc));
  cpu_ways_ = std::clamp<u32>(raw, 1, assoc - 1);
}

bool WayPartPolicy::set_cpu_ways(u32 n) {
  if (assoc_ < 2) return false;  // degenerate: nothing to partition
  const u32 clamped = std::clamp<u32>(n, 1, assoc_ - 1);
  if (clamped == cpu_ways_) return false;
  cpu_ways_ = clamped;
  invalidate_mapping();
  return true;
}

}  // namespace h2
