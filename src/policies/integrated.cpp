#include "policies/integrated.h"

#include <algorithm>

#include "common/ckpt_io.h"

namespace h2 {

IntegratedPolicy::IntegratedPolicy(const IntegratedConfig& cfg)
    : cfg_(cfg),
      stats_(cfg.stats),
      threshold_(std::max(1u, cfg.threshold)),
      cooldown_(cfg.cooldown) {}

bool IntegratedPolicy::allow_migration(const PolicyContext& ctx, bool victim_dirty) {
  (void)victim_dirty;
  // The page must have earned an exact (hot-level) count at or above the
  // threshold; cold pages (value() == 0) never migrate.
  if (stats_.value(ctx.tag) < threshold_) return false;
  // Global cooldown: at most one migration per window. This is the
  // hysteresis against ping-pong — after a swap, the displaced page cannot
  // immediately bounce back even if it is still being hammered.
  if (last_migration_ != kNever && ctx.now < last_migration_ + cooldown_) return false;
  pending_gate_ = true;  // consumed by the note_miss that follows
  return true;
}

void IntegratedPolicy::note_hit(const PolicyContext& ctx, u32 way) {
  (void)way;
  stats_.record(ctx.tag, ctx.now);
}

void IntegratedPolicy::note_miss(const PolicyContext& ctx, bool migrated) {
  // The mechanism calls allow_migration and then note_miss for the same
  // access, so the gate flag distinguishes a threshold migration (gate set)
  // from a first-touch fill (migrated but never gated).
  const bool was_gated = pending_gate_;
  pending_gate_ = false;
  if (migrated && was_gated) {
    // Threshold swap: the hot page moves up, the victim moves down.
    migrations_up_++;
    migrations_down_++;
    migration_bytes_ += 2ull * cfg_.block_bytes;
    last_migration_ = ctx.now;
    // The migrated page re-earns hotness from scratch: without this a page
    // at saturation would re-qualify on its very next miss and ping-pong.
    stats_.clear(ctx.tag);
    return;
  }
  stats_.record(ctx.tag, ctx.now);
}

bool IntegratedPolicy::set_threshold(u32 t) {
  t = std::max(1u, t);
  if (t == threshold_) return false;
  threshold_ = t;
  return true;
}

bool IntegratedPolicy::set_cooldown(u64 c) {
  if (c == cooldown_) return false;
  cooldown_ = c;
  return true;
}

void IntegratedPolicy::reset_measurement() {
  migrations_up_ = 0;
  migrations_down_ = 0;
  migration_bytes_ = 0;
}

void IntegratedPolicy::save_state(ckpt::CkptWriter& w) const {
  w.put_u32(threshold_);
  w.put_u64(cooldown_);
  w.put_u64(last_migration_);
  w.put_bool(pending_gate_);
  w.put_u64(migrations_up_);
  w.put_u64(migrations_down_);
  w.put_u64(migration_bytes_);
  stats_.save(w);
}

void IntegratedPolicy::load_state(ckpt::CkptReader& r) {
  threshold_ = r.get_u32();
  if (threshold_ == 0) r.fail("integrated threshold must be >= 1");
  cooldown_ = r.get_u64();
  last_migration_ = r.get_u64();
  pending_gate_ = r.get_bool();
  migrations_up_ = r.get_u64();
  migrations_down_ = r.get_u64();
  migration_bytes_ = r.get_u64();
  stats_.load(r);
}

}  // namespace h2
