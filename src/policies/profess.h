// ProFess model (Knyaginin et al., HPCA 2018; paper Section V).
//
// ProFess is a probabilistic hybrid-main-memory management framework aiming
// at multi-process fairness. Its migration-decision mechanism (MDM) gates
// migrations per process by their estimated benefit vs. cost, and a fairness
// controller boosts the process suffering the most. As in the paper, the
// model is ported to cache mode / 4-way associativity on the shared
// HBM+DDR configuration.
//
// Modelled decision structure:
//  - per-requestor migration probability p[r] in [p_min, 1];
//  - benefit estimate = fraction of recent migrations that produced at least
//    the expected hit-rate return (proxied by the requestor's fast-memory
//    hit rate trend across epochs);
//  - cost estimate = slow-tier congestion (backlog) attributable to
//    migration amplification;
//  - fairness: the side with the lower per-weight IPC gets its probability
//    nudged up, the other down.
// It does NOT decouple capacity/bandwidth partitioning — the way->channel
// mapping is the shared interleaved one — which is exactly the gap Hydrogen
// exploits (paper Section VI-A).
#pragma once

#include "common/rng.h"
#include "hybridmem/policy.h"

namespace h2 {

struct ProfessConfig {
  double p_init = 0.7;
  double p_min = 0.05;      ///< floor for the GPU (streaming) side
  double p_min_cpu = 0.4;   ///< the CPU side keeps a substantial migration share
  double p_max = 1.0;
  double step = 0.1;             ///< adaptation step per epoch
  double backlog_per_channel_hi = 2000.0;  ///< cycles of slow backlog deemed congested
  double weight_cpu = 12.0;      ///< fairness weights (match the IPC objective)
  double weight_gpu = 1.0;
  u64 seed = 0x9f0f355;
};

class ProfessPolicy final : public PartitionPolicy {
 public:
  explicit ProfessPolicy(const ProfessConfig& cfg = {});

  const char* name() const override { return "profess"; }

  u32 channel_of_way(u32 set, u32 way) const override {
    return (set + way) % num_channels_;
  }

  bool way_allowed(u32 set, u32 way, Requestor cls) const override {
    (void)set; (void)way; (void)cls;
    return true;
  }

  Requestor way_owner(u32 set, u32 way) const override {
    (void)set; (void)way;
    return Requestor::Cpu;
  }

  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override;
  void note_hit(const PolicyContext& ctx, u32 way) override;
  void note_miss(const PolicyContext& ctx, bool migrated) override;
  bool on_epoch(const EpochFeedback& fb) override;

  double probability(Requestor r) const { return p_[static_cast<u32>(r)]; }

  void save_state(ckpt::CkptWriter& w) const override;

 protected:
  void load_state(ckpt::CkptReader& r) override;

 private:
  ProfessConfig cfg_;
  Rng rng_;
  double p_[2];
  // epoch-local counters for the benefit estimate
  u64 hits_[2] = {0, 0};
  u64 accesses_[2] = {0, 0};
  double prev_hit_rate_[2] = {0.0, 0.0};
};

}  // namespace h2
