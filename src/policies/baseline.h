// The non-partitioned baseline (paper Section V "Baselines"): CPU and GPU
// share every way and every channel, and every miss migrates. This is the
// normalisation reference for all speedups.
#pragma once

#include "hybridmem/policy.h"

namespace h2 {

class BaselinePolicy final : public PartitionPolicy {
 public:
  const char* name() const override { return "baseline"; }

  u32 channel_of_way(u32 set, u32 way) const override {
    // Interleave ways across channels per set so both sides spread over the
    // whole fast-tier bandwidth (and contend everywhere).
    return (set + way) % num_channels_;
  }

  bool way_allowed(u32 set, u32 way, Requestor cls) const override {
    (void)set; (void)way; (void)cls;
    return true;
  }

  Requestor way_owner(u32 set, u32 way) const override {
    (void)set; (void)way;
    // Unpartitioned: ways have no side assignment, so no lazy mismatches.
    return Requestor::Cpu;
  }

  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override {
    (void)ctx; (void)victim_dirty;
    return true;
  }
};

}  // namespace h2
