#include "policies/hashcache.h"

#include "common/ckpt_io.h"
#include "common/rng.h"

namespace h2 {

bool HAShCachePolicy::allow_migration(const PolicyContext& ctx, bool victim_dirty) {
  (void)victim_dirty;
  if (ctx.cls == Requestor::Cpu) return true;
  // GPU blocks migrate only on a repeated miss: streaming blocks with no
  // reuse stay in the slow tier (HAShCache's bypass).
  const u64 h = mix_hash(ctx.tag, 0x9a5cafe5ull);
  const size_t slot = static_cast<size_t>(h % filter_.size());
  if (filter_[slot] == ctx.tag) {
    filter_hits_++;
    return true;
  }
  filter_[slot] = ctx.tag;
  return false;
}

void HAShCachePolicy::save_state(ckpt::CkptWriter& w) const {
  w.put_pod_vec(filter_);
  w.put_u64(filter_hits_);
}

void HAShCachePolicy::load_state(ckpt::CkptReader& r) {
  r.get_pod_vec_exact(filter_);
  filter_hits_ = r.get_u64();
}

}  // namespace h2
