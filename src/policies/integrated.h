// Integrated coherent-NUMA design (Grace-Hopper mode; ROADMAP scenario
// family, PAPERS.md Grace Hopper + NUMA-emulation entries).
//
// The successor regime to remap-based hybrid memory: both tiers form one
// cache-coherent flat address space (HybridMode::Flat — SimSystem and the
// oracle force it for this design), pages are placed on first touch, and a
// page earns a migration into the fast tier only once its access counter
// crosses a threshold. There is no remap-table indirection and no
// way-partitioning: every way is open to both requestors, the way->channel
// map is statically interleaved, and contention management happens entirely
// through *which pages are allowed to move*.
//
// Migration state machine (DESIGN.md "Integrated design"):
//   cold --record()--> counted (coarse) --promote--> hot (exact count)
//   hot & count >= threshold & cooldown elapsed --miss--> MIGRATE
//   MIGRATE: the missed page swaps with the fast-tier victim (one page up,
//   one page down, 2 x block_bytes of migration traffic charged by the
//   mechanism to the fast and slow channels crossed), the page's counter is
//   cleared, and the global cooldown clock rearms — the hysteresis that
//   prevents two pages ping-ponging through the same set.
//
// The policy's conserved quantities (migrations_up/down/bytes and the
// counter table itself) are diffed sim-vs-reference by the oracle, the same
// way HydrogenPolicy's active point is.
#pragma once

#include "hybridmem/page_stats.h"
#include "hybridmem/policy.h"

namespace h2 {

struct IntegratedConfig {
  u32 threshold = 4;     ///< hot-count a page needs before it may migrate
  u64 cooldown = 512;    ///< cycles between migrations (anti-ping-pong)
  u32 block_bytes = 256; ///< page size for migration-byte accounting
  PageStatsConfig stats;
};

class IntegratedPolicy final : public PartitionPolicy {
 public:
  /// One `bw+`/`bw-` schedule step moves the cooldown by this many cycles.
  static constexpr u64 kCooldownStep = 256;

  explicit IntegratedPolicy(const IntegratedConfig& cfg = {});

  const char* name() const override { return "integrated"; }

  u32 channel_of_way(u32 set, u32 way) const override {
    return (set + way) % num_channels_;
  }

  bool way_allowed(u32 set, u32 way, Requestor cls) const override {
    (void)set; (void)way; (void)cls;
    return true;
  }

  Requestor way_owner(u32 set, u32 way) const override {
    (void)set; (void)way;
    return Requestor::Cpu;
  }

  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override;
  void note_hit(const PolicyContext& ctx, u32 way) override;
  void note_miss(const PolicyContext& ctx, bool migrated) override;

  /// Schedule-steppable knobs (epoch_schedule.cpp): the threshold plays the
  /// capacity role (grow = easier to migrate), the cooldown the bandwidth
  /// role (bw+ = more migration bandwidth). Both return true iff the value
  /// moved, the WayPart setter contract.
  bool set_threshold(u32 t);
  bool set_cooldown(u64 c);

  u32 threshold() const { return threshold_; }
  u32 initial_threshold() const { return cfg_.threshold; }
  u64 cooldown() const { return cooldown_; }

  /// Conserved quantities the oracle diffs sim-vs-reference. Every
  /// threshold migration swaps exactly one page up and one page down, so
  /// migrations_up == migrations_down and
  /// migration_bytes == (up + down) * block_bytes hold by construction —
  /// unless a fault (migrate-lost) breaks the mechanism underneath.
  u64 migrations_up() const { return migrations_up_; }
  u64 migrations_down() const { return migrations_down_; }
  u64 migration_bytes() const { return migration_bytes_; }

  const PageStatsTable& stats() const { return stats_; }

  void reset_measurement() override;
  void save_state(ckpt::CkptWriter& w) const override;

 protected:
  void load_state(ckpt::CkptReader& r) override;

 private:
  IntegratedConfig cfg_;
  PageStatsTable stats_;
  u32 threshold_;
  u64 cooldown_;
  Cycle last_migration_ = kNever;  ///< kNever = no migration yet
  bool pending_gate_ = false;      ///< allow_migration said yes; consumed by note_miss
  u64 migrations_up_ = 0;
  u64 migrations_down_ = 0;
  u64 migration_bytes_ = 0;
};

}  // namespace h2
