#include "policies/baseline.h"

// BaselinePolicy is header-only; this TU anchors the library target.
