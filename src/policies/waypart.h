// WayPart (paper Section V): a simple static way-partitioning scheme without
// Hydrogen's decoupling. 75 % of the ways are dedicated to the CPU, and the
// way->channel mapping is *coupled* (way w lives on channel w % N), so the
// capacity split forces the same bandwidth split: the GPU is starved of fast
// bandwidth even though it barely needs capacity. The split is static in the
// paper's evaluation, but the boundary itself is a runtime knob
// (set_cpu_ways) so scripted epoch schedules can exercise the mechanism's
// lazy-reconfiguration path under the simplest possible owner function.
#pragma once

#include "hybridmem/policy.h"

namespace h2 {

class WayPartPolicy final : public PartitionPolicy {
 public:
  /// `cpu_way_fraction` of the ways go to the CPU (default 75 %).
  explicit WayPartPolicy(double cpu_way_fraction = 0.75)
      : cpu_way_fraction_(cpu_way_fraction) {}

  const char* name() const override { return "waypart"; }

  void bind(u32 num_channels, u32 assoc, u32 num_sets) override;

  u32 channel_of_way(u32 set, u32 way) const override {
    (void)set;
    return way % num_channels_;  // coupled mapping
  }

  bool way_allowed(u32 set, u32 way, Requestor cls) const override {
    (void)set;
    if (assoc_ < 2) return true;  // degenerate: nothing to partition
    return cls == Requestor::Cpu ? way < cpu_ways_ : way >= cpu_ways_;
  }

  Requestor way_owner(u32 set, u32 way) const override {
    (void)set;
    if (assoc_ < 2) return Requestor::Cpu;
    return way < cpu_ways_ ? Requestor::Cpu : Requestor::Gpu;
  }

  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override {
    (void)ctx; (void)victim_dirty;
    return true;
  }

  u32 cpu_ways() const { return cpu_ways_; }

  /// Moves the partition boundary, clamped to [1, assoc-1] (each side always
  /// keeps one way). Returns true iff the boundary actually moved — i.e.
  /// some ways changed owner and lazy fixups are now due.
  bool set_cpu_ways(u32 n);

 private:
  double cpu_way_fraction_;
  u32 cpu_ways_ = 3;
};

}  // namespace h2
