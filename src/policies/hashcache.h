// HAShCache model (Patil & Govindarajan, TACO 2017; paper Section V).
//
// Modelled features:
//  - direct-mapped fast memory with chaining pseudo-associativity — these
//    are mechanism-level and configured via HybridMemConfig {assoc = 1,
//    chaining = true};
//  - CPU request prioritisation at the memory controller — configured via
//    MemSystemConfig::cpu_priority;
//  - slow-memory bypass for GPU blocks with no predicted reuse — implemented
//    here with a first-miss/second-miss reuse filter: a GPU block migrates
//    only if it missed recently (evidence of short-term reuse).
// The harness bundles these three knobs into the "hashcache" design.
#pragma once

#include <vector>

#include "hybridmem/policy.h"

namespace h2 {

class HAShCachePolicy final : public PartitionPolicy {
 public:
  explicit HAShCachePolicy(u32 filter_entries = 8192)
      : filter_(filter_entries, 0) {}

  const char* name() const override { return "hashcache"; }

  u32 channel_of_way(u32 set, u32 way) const override {
    return (set + way) % num_channels_;
  }

  bool way_allowed(u32 set, u32 way, Requestor cls) const override {
    (void)set; (void)way; (void)cls;
    return true;
  }

  Requestor way_owner(u32 set, u32 way) const override {
    (void)set; (void)way;
    return Requestor::Cpu;
  }

  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override;

  u64 filter_hits() const { return filter_hits_; }

  void save_state(ckpt::CkptWriter& w) const override;

 protected:
  void load_state(ckpt::CkptReader& r) override;

 private:
  std::vector<u64> filter_;  ///< recently-missed GPU block tags (direct-mapped)
  u64 filter_hits_ = 0;
};

}  // namespace h2
