// DRAM device timing and energy parameters (paper Table I), plus presets for
// HBM2E, HBM3 and DDR4-3200. All latencies are stored in device command-clock
// cycles and converted to core cycles by the channel model.
#pragma once

#include <string>

#include "common/types.h"

namespace h2 {

struct DramTiming {
  std::string name;
  double device_mhz = 1600.0;  ///< command clock frequency
  u32 t_rcd = 22;              ///< ACT -> column command, device cycles
  u32 t_cas = 22;              ///< column command -> first data
  u32 t_rp = 22;               ///< precharge
  u32 bus_bytes_per_device_cycle = 16;  ///< DDR: 2 transfers x width/8
  u32 banks_per_rank = 16;
  u32 ranks = 1;
  u64 row_bytes = 2048;        ///< row buffer size per bank
  double rd_pj_per_bit = 6.4;  ///< read energy
  double wr_pj_per_bit = 6.4;  ///< write energy
  double act_nj = 15.0;        ///< ACT+PRE energy per activation
  double static_mw_per_channel = 110.0;  ///< background power

  u32 t_refi = 12480;  ///< average refresh interval (device cycles, ~7.8 us)
  u32 t_rfc = 560;     ///< refresh cycle time (device cycles, ~350 ns)

  // Command-legality parameters used only by the DDR backend
  // (mem/ddr_backend.h); the fast analytic model ignores them.
  u32 t_ras = 52;     ///< ACT -> PRE minimum, device cycles
  u32 t_ccd_s = 4;    ///< column-to-column, different bank group
  u32 t_ccd_l = 8;    ///< column-to-column, same bank group
  u32 bank_groups = 4;  ///< bank groups per rank

  u32 total_banks() const { return banks_per_rank * ranks; }
  /// Peak bandwidth in bytes per nanosecond (== GB/s).
  double peak_gbps() const {
    return bus_bytes_per_device_cycle * device_mhz / 1000.0;
  }
};

/// HBM2E channel: 128-bit bus @ 3.2 GT/s -> 51.2 GB/s, RCD-CAS-RP 23-23-23,
/// RD/WR 6.4 pJ/bit (Table I).
DramTiming hbm2e_timing();

/// HBM3: doubled per-channel bandwidth, scaled timing (paper Section VI-A).
DramTiming hbm3_timing();

/// DDR4-3200 channel: 64-bit bus -> 25.6 GB/s, RCD-CAS-RP 22-22-22,
/// RD/WR 33 pJ/bit (Table I).
DramTiming ddr4_3200_timing();

/// Groups `group` physical channels into one logical superchannel that
/// supplies a whole data block per access (paper Section IV-A: 4 HBM channels
/// x 64 B cachelines feed one 256 B block). Bandwidth and bank count scale by
/// `group`; latencies are unchanged.
DramTiming grouped(const DramTiming& base, u32 group);

}  // namespace h2
