#include "mem/channel.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "check/check.h"
#include "check/fault.h"
#include "common/assert.h"
#include "common/ckpt_io.h"
#include "mem/ddr_backend.h"

namespace h2 {

const char* to_string(ChannelBackendKind k) {
  return k == ChannelBackendKind::Ddr ? "ddr" : "fast";
}

bool parse_backend_kind(const std::string& s, ChannelBackendKind* out) {
  if (s == "fast") {
    *out = ChannelBackendKind::Fast;
    return true;
  }
  if (s == "ddr") {
    *out = ChannelBackendKind::Ddr;
    return true;
  }
  return false;
}

// --- ChannelBackend (shared clock conversion + transfer table) -----------

ChannelBackend::ChannelBackend(const DramTiming& timing, double core_ghz, u32 id)
    : timing_(timing), id_(id), core_ghz_(core_ghz) {
  H2_ASSERT(timing.device_mhz > 0 && core_ghz > 0, "bad clocks");
  core_cycles_per_device_cycle_ = core_ghz * 1000.0 / timing.device_mhz;
  bytes_per_core_cycle_ =
      timing.bus_bytes_per_device_cycle / core_cycles_per_device_cycle_;
  controller_overhead_ = 16;  // queue + PHY + arbitration, core cycles
  // Request sizes are line/sector-sized (a handful of distinct small values
  // repeated ~10M times per run); precompute the ceil once per size with the
  // same expression transfer_cycles() falls back to.
  transfer_memo_.resize(4097);
  for (u32 b = 1; b < transfer_memo_.size(); ++b) {
    transfer_memo_[b] = std::max<u32>(
        1, static_cast<u32>(std::ceil(b / bytes_per_core_cycle_)));
  }
}

u32 ChannelBackend::to_core(u32 dev) const {
  return static_cast<u32>(std::lround(dev * core_cycles_per_device_cycle_));
}

u32 ChannelBackend::transfer_cycles(u32 bytes) const {
  if (bytes < transfer_memo_.size()) return transfer_memo_[bytes];
  return std::max<u32>(
      1, static_cast<u32>(std::ceil(bytes / bytes_per_core_cycle_)));
}

// --- FastBackend ---------------------------------------------------------

FastBackend::FastBackend(const DramTiming& timing, double core_ghz, u32 id)
    : ChannelBackend(timing, core_ghz, id) {
  c_rcd_ = to_core(timing.t_rcd);
  c_cas_ = to_core(timing.t_cas);
  c_rp_ = to_core(timing.t_rp);
  c_refi_ = to_core(timing.t_refi);
  c_rfc_ = to_core(timing.t_rfc);
  banks_.resize(timing.total_banks());
  next_refresh_ = c_refi_;
  if (std::has_single_bit(timing_.row_bytes) &&
      std::has_single_bit(banks_.size())) {
    pow2_geometry_ = true;
    row_shift_ = static_cast<u32>(std::countr_zero(timing_.row_bytes));
    bank_shift_ = static_cast<u32>(std::countr_zero(banks_.size()));
  }
}

u64 FastBackend::apply_refresh(Cycle now) {
  // All-bank refresh: once per tREFI the channel is unavailable for tRFC.
  // The stall is charged to both bus queues (no data can move), modelled as
  // work-queue inflation at the refresh deadline.
  u64 applied = 0;
  while (now >= next_refresh_) {
    // Fault-injection site (check/fault.h): silently drop this refresh
    // window. The window still "elapses" (next_refresh_ advances), so only
    // the refresh conservation law refresh_windows() ==
    // expected_refresh_windows(now) can catch it — the oracle diffs exactly
    // that.
    if (fault::at(fault::Kind::RefreshSkip)) {
      next_refresh_ += c_refi_;
      continue;
    }
    read_busy_until_ = std::max(read_busy_until_, next_refresh_) + c_rfc_;
    write_busy_until_ = std::max(write_busy_until_, next_refresh_) + c_rfc_;
    next_refresh_ += c_refi_;
    refresh_windows_++;
    applied++;
  }
  return applied;
}

ChannelBackend::Outcome FastBackend::request(Cycle now, Addr addr, u32 bytes,
                                             bool is_write, bool high_priority,
                                             Cycle earliest) {
  Outcome o;
  if (c_refi_ > 0) o.refreshes = apply_refresh(now);

#if H2_CHECK_LEVEL >= 2
  // Reservation-slot overlap is impossible iff the shared cursors only ever
  // move forward; snapshot them so we can prove it for this request.
  const Cycle prev_read_busy = read_busy_until_;
  const Cycle prev_write_busy = write_busy_until_;
#endif

  u64 row_global;
  u32 bank_idx;
  i64 row;
  if (pow2_geometry_) {
    row_global = addr >> row_shift_;
    bank_idx = static_cast<u32>(row_global & (banks_.size() - 1));
    row = static_cast<i64>(row_global >> bank_shift_);
  } else {
    row_global = addr / timing_.row_bytes;
    bank_idx = static_cast<u32>(row_global % banks_.size());
    row = static_cast<i64>(row_global / banks_.size());
  }
  Bank& bank = banks_[bank_idx];

  const Cycle issue = std::max(now, earliest);
  Cycle t = std::max<Cycle>(issue + controller_overhead_, bank.busy_until);

  const u32 transfer = transfer_cycles(bytes);
  const u32 critical = transfer_cycles(std::min<u32>(bytes, 64));

  u32 cmd_lat;
  if (bank.open_row == row) {
    cmd_lat = c_cas_;
    o.row_hits = 1;
    // Column commands pipeline: the bank can accept the next command after
    // roughly one burst, not after the full CAS latency.
    bank.busy_until = t + transfer;
  } else {
    cmd_lat = (bank.open_row >= 0 ? c_rp_ : 0) + c_rcd_ + c_cas_;
    o.row_misses = 1;
    o.activations = 1;
    activations_++;
    if (bank.open_row >= 0) {
      precharges_++;
    } else {
      open_banks_++;
    }
    bank.open_row = row;
    // The bank is occupied through precharge + activate; afterwards column
    // commands pipeline as above.
    bank.busy_until = t + cmd_lat - c_cas_ + transfer;
  }

  const Cycle data_ready = t + cmd_lat;

  // Work-conserving bus queues: each cursor accumulates pure transfer work
  // from a now-clamped base. A request whose data is only ready in the
  // future (bank latency, chained metadata->data hops) starts then, but does
  // NOT push the shared cursor to that future time — the bus slot it skipped
  // is left usable by later-issued requests (hole filling). This keeps
  // bandwidth accounting exact while avoiding spurious serialisation behind
  // schedule holes.
  //
  // Read-over-write scheduling (see the class comment): reads queue behind
  // the read queue only; each write adds half its transfer time to the read
  // queue (drain interference) and writes queue behind everything.
  const Cycle read_base = std::max(read_busy_until_, now);
  const Cycle write_base = std::max({write_busy_until_, read_base, now});
  Cycle queue_from = is_write ? write_base : read_base;

  // CPU-priority model: high-priority requests may jump part of the queue
  // (bounded credit), modelling reordering in the controller queue.
  if (priority_enabled_ && high_priority) {
    const Cycle credit = std::min<Cycle>(backlog(now) / 2, 150);
    queue_from = queue_from > now + credit ? queue_from - credit : std::min(queue_from, now);
  }
  const Cycle data_start = std::max(data_ready, queue_from);
  if (is_write) {
    write_busy_until_ = write_base + transfer;
    read_busy_until_ = read_base + transfer / 2;
  } else {
    read_busy_until_ = read_base + transfer;
  }

#if H2_CHECK_LEVEL >= 2
  // Fault-injection site (check/fault.h): yank the read cursor backwards past
  // the level-2 snapshot above, simulating an overlapping bus reservation.
  // Only the cursor-monotonicity audit below can catch this, so the site
  // exists only where that audit does and tools/h2fault skips the class when
  // compiled below level 2.
  if (prev_read_busy > 0 && fault::at(fault::Kind::CursorSkew))
    read_busy_until_ = prev_read_busy - 1;
#endif

  H2_CHECK(1, bank.open_row == row && bank.busy_until >= t,
           "channel %u cycle %llu: illegal row-buffer transition on bank %u "
           "(open_row=%lld expected %lld, busy_until=%llu < start=%llu)",
           id_, static_cast<unsigned long long>(now), bank_idx,
           static_cast<long long>(bank.open_row), static_cast<long long>(row),
           static_cast<unsigned long long>(bank.busy_until),
           static_cast<unsigned long long>(t));
  H2_CHECK(1, t <= data_start && critical <= transfer,
           "channel %u cycle %llu: result ordering broken "
           "(start=%llu > data_start=%llu or critical=%u > transfer=%u)",
           id_, static_cast<unsigned long long>(now),
           static_cast<unsigned long long>(t),
           static_cast<unsigned long long>(data_start), critical, transfer);
#if H2_CHECK_LEVEL >= 2
  H2_CHECK(2, read_busy_until_ >= prev_read_busy && write_busy_until_ >= prev_write_busy,
           "channel %u cycle %llu: bus reservation overlapped an earlier slot "
           "(read cursor %llu -> %llu, write cursor %llu -> %llu)",
           id_, static_cast<unsigned long long>(now),
           static_cast<unsigned long long>(prev_read_busy),
           static_cast<unsigned long long>(read_busy_until_),
           static_cast<unsigned long long>(prev_write_busy),
           static_cast<unsigned long long>(write_busy_until_));
#endif

  o.result = MemResult{t, data_start + critical, data_start + transfer,
                       data_start + transfer};
  return o;
}

ChannelBackend::Outcome FastBackend::drain(Cycle now) {
  Outcome o;
  if (c_refi_ > 0) o.refreshes = apply_refresh(now);
  return o;
}

void FastBackend::save(ckpt::CkptWriter& w) const {
  w.put_bool(priority_enabled_);
  w.put_pod_vec(banks_);
  w.put_u64(read_busy_until_);
  w.put_u64(write_busy_until_);
  w.put_u64(next_refresh_);
  w.put_u64(refresh_windows_);
  w.put_u64(activations_);
  w.put_u64(precharges_);
  w.put_u32(open_banks_);
}

void FastBackend::load(ckpt::CkptReader& r) {
  priority_enabled_ = r.get_bool();
  r.get_pod_vec_exact(banks_);
  read_busy_until_ = r.get_u64();
  write_busy_until_ = r.get_u64();
  next_refresh_ = r.get_u64();
  refresh_windows_ = r.get_u64();
  activations_ = r.get_u64();
  precharges_ = r.get_u64();
  open_banks_ = r.get_u32();
}

// --- Channel facade ------------------------------------------------------

Channel::Channel(const DramTiming& timing, double core_ghz, u32 id,
                 ChannelBackendKind backend, const DdrParams& ddr)
    : timing_(timing), id_(id), core_ghz_(core_ghz), kind_(backend) {
  if (kind_ == ChannelBackendKind::Ddr) {
    // [ddr] timing overrides patch the tier preset before the backend
    // derives its core-cycle constants.
    if (ddr.t_ras > 0) timing_.t_ras = ddr.t_ras;
    if (ddr.t_ccd_s > 0) timing_.t_ccd_s = ddr.t_ccd_s;
    if (ddr.t_ccd_l > 0) timing_.t_ccd_l = ddr.t_ccd_l;
    if (ddr.bank_groups > 0) timing_.bank_groups = ddr.bank_groups;
    if (ddr.t_refi > 0) timing_.t_refi = ddr.t_refi;
    if (ddr.t_rfc > 0) timing_.t_rfc = ddr.t_rfc;
    backend_ = std::make_unique<DdrBackend>(timing_, core_ghz, id, ddr);
  } else {
    backend_ = std::make_unique<FastBackend>(timing_, core_ghz, id);
  }
}

Channel::~Channel() = default;

void Channel::apply_accounting(const ChannelBackend::Outcome& o) {
  // Energy accumulation order matches the pre-backend-split implementation
  // exactly: one add per refresh window, then one add per activation, then
  // (in request()) the per-bit transfer energy. k sequential adds of x are
  // not the same double as one add of k*x, so the loops stay loops.
  for (u64 i = 0; i < o.refreshes; ++i)
    dynamic_energy_pj_ += timing_.act_nj * 1000.0 * timing_.total_banks() / 4.0;
  refreshes_ += o.refreshes;
  row_hits_ += o.row_hits;
  row_misses_ += o.row_misses;
  for (u32 i = 0; i < o.activations; ++i)
    dynamic_energy_pj_ += timing_.act_nj * 1000.0;
}

Channel::Result Channel::request(Cycle now, Addr addr, u32 bytes, bool is_write,
                                 bool high_priority, Cycle earliest) {
  H2_ASSERT(bytes > 0, "zero-byte DRAM request");
  requests_++;
  const ChannelBackend::Outcome o =
      backend_->request(now, addr, bytes, is_write, high_priority, earliest);
  apply_accounting(o);

  class_bytes_[static_cast<u32>(current_requestor_)] += bytes;
  const double pj_per_bit = is_write ? timing_.wr_pj_per_bit : timing_.rd_pj_per_bit;
  dynamic_energy_pj_ += pj_per_bit * 8.0 * bytes;

#if H2_CHECK_LEVEL >= 2
  H2_CHECK(2, requests_ + reset_credit_ == row_hits_ + row_misses_ + backend_->pending(),
           "channel %u cycle %llu: request conservation broken "
           "(requests=%llu + credit=%llu != row_hits=%llu + row_misses=%llu "
           "+ pending=%llu)",
           id_, static_cast<unsigned long long>(now),
           static_cast<unsigned long long>(requests_),
           static_cast<unsigned long long>(reset_credit_),
           static_cast<unsigned long long>(row_hits_),
           static_cast<unsigned long long>(row_misses_),
           static_cast<unsigned long long>(backend_->pending()));
#endif

  return o.result;
}

void Channel::drain(Cycle now) {
  apply_accounting(backend_->drain(now));
}

double Channel::static_energy_pj(Cycle now) const {
  const double ns = static_cast<double>(now) / core_ghz_;
  return timing_.static_mw_per_channel * 1e-3 * ns * 1e3;  // mW * ns -> pJ
}

void Channel::reset_stats() {
  class_bytes_[0] = class_bytes_[1] = 0;
  row_hits_ = row_misses_ = requests_ = refreshes_ = 0;
  reset_credit_ = backend_->pending();
  dynamic_energy_pj_ = 0.0;
}

void Channel::save(ckpt::CkptWriter& w) const {
  w.put_u8(static_cast<u8>(current_requestor_));
  w.put_u64(class_bytes_[0]);
  w.put_u64(class_bytes_[1]);
  w.put_u64(row_hits_);
  w.put_u64(row_misses_);
  w.put_u64(requests_);
  w.put_u64(refreshes_);
  w.put_u64(reset_credit_);
  w.put_f64(dynamic_energy_pj_);
  backend_->save(w);
}

void Channel::load(ckpt::CkptReader& r) {
  const u8 req = r.get_u8();
  if (req > 1) r.fail("channel requestor tag out of range");
  current_requestor_ = static_cast<Requestor>(req);
  class_bytes_[0] = r.get_u64();
  class_bytes_[1] = r.get_u64();
  row_hits_ = r.get_u64();
  row_misses_ = r.get_u64();
  requests_ = r.get_u64();
  refreshes_ = r.get_u64();
  reset_credit_ = r.get_u64();
  dynamic_energy_pj_ = r.get_f64();
  backend_->load(r);
}

}  // namespace h2
