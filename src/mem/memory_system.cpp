#include "mem/memory_system.h"

#include "check/check.h"
#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

MemSystemConfig MemSystemConfig::table1_default() {
  MemSystemConfig cfg;
  cfg.fast_channel_timing = hbm2e_timing();
  cfg.slow_channel_timing = ddr4_3200_timing();
  cfg.fast_channels = 16;
  cfg.fast_group = 4;
  cfg.slow_channels = 4;
  return cfg;
}

MemSystemConfig MemSystemConfig::table1_hbm3() {
  MemSystemConfig cfg = table1_default();
  cfg.fast_channel_timing = hbm3_timing();
  return cfg;
}

MemorySystem::MemorySystem(const MemSystemConfig& cfg) : cfg_(cfg) {
  H2_ASSERT(cfg.fast_channels % cfg.fast_group == 0,
            "fast channels (%u) must be divisible by the group size (%u)",
            cfg.fast_channels, cfg.fast_group);
  const u32 n_super = cfg.fast_channels / cfg.fast_group;
  H2_ASSERT(n_super >= 1 && cfg.slow_channels >= 1, "need at least one channel per tier");
  const DramTiming super = grouped(cfg.fast_channel_timing, cfg.fast_group);
  for (u32 i = 0; i < n_super; ++i) {
    fast_.push_back(std::make_unique<Channel>(super, cfg.core_ghz, i,
                                              cfg.backend, cfg.ddr));
    fast_.back()->set_priority_enabled(cfg.cpu_priority);
  }
  for (u32 i = 0; i < cfg.slow_channels; ++i) {
    slow_.push_back(std::make_unique<Channel>(cfg.slow_channel_timing,
                                              cfg.core_ghz, i, cfg.backend,
                                              cfg.ddr));
    slow_.back()->set_priority_enabled(cfg.cpu_priority);
  }
  issued_fast_.assign(fast_.size(), 0);
  issued_slow_.assign(slow_.size(), 0);
}

Channel::Result MemorySystem::fast_access(Cycle now, u32 superchannel, Addr addr,
                                          u32 bytes, bool is_write, Requestor who,
                                          Cycle earliest) {
  H2_CHECK(1, superchannel < fast_.size(),
           "%s cycle %llu: fast superchannel %u out of range [0, %zu)",
           who == Requestor::Cpu ? "cpu" : "gpu",
           static_cast<unsigned long long>(now), superchannel, fast_.size());
  H2_ASSERT(superchannel < fast_.size(), "fast superchannel %u out of range", superchannel);
  issued_fast_[superchannel]++;
  Channel& ch = *fast_[superchannel];
  ch.set_requestor(who);
  return ch.request(now, addr, bytes, is_write,
                    /*high_priority=*/who == Requestor::Cpu, earliest);
}

Channel::Result MemorySystem::slow_access(Cycle now, Addr addr, u32 bytes,
                                          bool is_write, Requestor who,
                                          Cycle earliest) {
  Channel& ch = *slow_[slow_channel_of(addr)];
  issued_slow_[ch.id()]++;
  ch.set_requestor(who);
  return ch.request(now, addr, bytes, is_write,
                    /*high_priority=*/who == Requestor::Cpu, earliest);
}

Cycle MemorySystem::slow_backlog(Cycle now) const {
  Cycle total = 0;
  for (const auto& ch : slow_) total += ch->backlog(now);
  return total;
}

Cycle MemorySystem::fast_backlog(Cycle now) const {
  Cycle total = 0;
  for (const auto& ch : fast_) total += ch->backlog(now);
  return total;
}

u64 MemorySystem::tier_bytes(Tier t) const {
  return tier_bytes(t, Requestor::Cpu) + tier_bytes(t, Requestor::Gpu);
}

u64 MemorySystem::tier_bytes(Tier t, Requestor r) const {
  u64 total = 0;
  for (const auto& ch : (t == Tier::Fast ? fast_ : slow_)) total += ch->bytes_transferred(r);
  return total;
}

double MemorySystem::dynamic_energy_pj(Tier t) const {
  double total = 0;
  for (const auto& ch : (t == Tier::Fast ? fast_ : slow_)) total += ch->dynamic_energy_pj();
  return total;
}

double MemorySystem::static_energy_pj(Tier t, Cycle now) const {
  double total = 0;
  for (const auto& ch : (t == Tier::Fast ? fast_ : slow_)) total += ch->static_energy_pj(now);
  return total;
}

double MemorySystem::total_energy_pj(Cycle now) const {
  return dynamic_energy_pj(Tier::Fast) + dynamic_energy_pj(Tier::Slow) +
         static_energy_pj(Tier::Fast, now) + static_energy_pj(Tier::Slow, now);
}

u64 MemorySystem::tier_row_hits(Tier t) const {
  u64 total = 0;
  for (const auto& ch : (t == Tier::Fast ? fast_ : slow_)) total += ch->row_hits();
  return total;
}

u64 MemorySystem::tier_row_misses(Tier t) const {
  u64 total = 0;
  for (const auto& ch : (t == Tier::Fast ? fast_ : slow_)) total += ch->row_misses();
  return total;
}

void MemorySystem::drain_backends(Cycle now) {
  for (auto& ch : fast_) ch->drain(now);
  for (auto& ch : slow_) ch->drain(now);
}

void MemorySystem::reset_stats() {
  for (auto& ch : fast_) ch->reset_stats();
  for (auto& ch : slow_) ch->reset_stats();
  issued_fast_.assign(fast_.size(), 0);
  issued_slow_.assign(slow_.size(), 0);
}

void MemorySystem::audit(Cycle now) const {
  if (!H2_CHECK_ACTIVE(2)) return;
  for (size_t i = 0; i < fast_.size(); ++i) {
    H2_CHECK(2, issued_fast_[i] == fast_[i]->requests(),
             "memory-system cycle %llu: fast superchannel %zu lost requests "
             "(issued=%llu != completed=%llu, in-flight must be 0 at drain)",
             static_cast<unsigned long long>(now), i,
             static_cast<unsigned long long>(issued_fast_[i]),
             static_cast<unsigned long long>(fast_[i]->requests()));
  }
  for (size_t i = 0; i < slow_.size(); ++i) {
    H2_CHECK(2, issued_slow_[i] == slow_[i]->requests(),
             "memory-system cycle %llu: slow channel %zu lost requests "
             "(issued=%llu != completed=%llu, in-flight must be 0 at drain)",
             static_cast<unsigned long long>(now), i,
             static_cast<unsigned long long>(issued_slow_[i]),
             static_cast<unsigned long long>(slow_[i]->requests()));
  }
}

double MemorySystem::fast_peak_gbps() const {
  double total = 0;
  for (const auto& ch : fast_) total += ch->timing().peak_gbps();
  return total;
}

double MemorySystem::slow_peak_gbps() const {
  double total = 0;
  for (const auto& ch : slow_) total += ch->timing().peak_gbps();
  return total;
}

void MemorySystem::save(ckpt::CkptWriter& w) const {
  w.put_pod_vec(issued_fast_);
  w.put_pod_vec(issued_slow_);
  for (const auto& ch : fast_) ch->save(w);
  for (const auto& ch : slow_) ch->save(w);
}

void MemorySystem::load(ckpt::CkptReader& r) {
  r.get_pod_vec_exact(issued_fast_);
  r.get_pod_vec_exact(issued_slow_);
  for (auto& ch : fast_) ch->load(r);
  for (auto& ch : slow_) ch->load(r);
}

}  // namespace h2
