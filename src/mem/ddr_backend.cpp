#include "mem/ddr_backend.h"

#include <algorithm>

#include "check/check.h"
#include "check/fault.h"
#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

DdrBackend::DdrBackend(const DramTiming& timing, double core_ghz, u32 id,
                       const DdrParams& params)
    : ChannelBackend(timing, core_ghz, id), params_(params) {
  c_rcd_ = to_core(timing.t_rcd);
  c_cas_ = to_core(timing.t_cas);
  c_rp_ = to_core(timing.t_rp);
  c_ras_ = to_core(timing.t_ras);
  c_rc_ = c_ras_ + c_rp_;
  c_ccd_s_ = to_core(timing.t_ccd_s);
  c_ccd_l_ = to_core(timing.t_ccd_l);
  c_refi_ = to_core(timing.t_refi);
  c_rfc_ = to_core(timing.t_rfc);
  banks_per_rank_ = std::max<u32>(1, timing.banks_per_rank);
  ranks_ = std::max<u32>(1, timing.ranks);
  bank_groups_ = std::max<u32>(1, std::min(timing.bank_groups, banks_per_rank_));
  banks_.resize(static_cast<size_t>(banks_per_rank_) * ranks_);
  next_refresh_ = c_refi_;
  H2_ASSERT(params_.frfcfs_cap >= 1, "frfcfs_cap must be >= 1");
  H2_ASSERT(params_.wq_low < params_.wq_high &&
                params_.wq_high <= params_.wq_depth,
            "write-drain watermarks must satisfy low < high <= depth "
            "(low=%u high=%u depth=%u)",
            params_.wq_low, params_.wq_high, params_.wq_depth);
}

void DdrBackend::split(Addr addr, u32* bank_idx, i64* row) const {
  const u64 row_global = addr / timing_.row_bytes;
  *bank_idx = static_cast<u32>(row_global % banks_.size());
  *row = static_cast<i64>(row_global / banks_.size());
}

Cycle DdrBackend::ccd_ready(u32 rank, u32 group) const {
  if (!have_last_col_) return 0;
  const u32 sep = (rank == last_col_rank_ && group == last_col_group_)
                      ? c_ccd_l_
                      : c_ccd_s_;
  return last_col_at_ + sep;
}

void DdrBackend::trace(DdrCommand::Kind kind, Cycle at, u32 bank_idx, i64 row) {
  if (!trace_) return;
  const u32 rank = bank_idx / banks_per_rank_;
  const u32 group = (bank_idx % banks_per_rank_) % bank_groups_;
  trace_->push_back(DdrCommand{kind, at, rank, group, bank_idx, row});
}

u64 DdrBackend::catch_up_refresh(Cycle now) {
  if (c_refi_ == 0) return 0;
  u64 applied = 0;
  while (now >= next_refresh_) {
    const Cycle window = next_refresh_;
    // Fault-injection site (check/fault.h): drop a due refresh window. The
    // window still elapses, so only the conservation law refresh_windows()
    // == expected_refresh_windows(now) — diffed by the oracle — catches it.
    if (fault::at(fault::Kind::RefreshSkip)) {
      next_refresh_ += c_refi_;
      continue;
    }
    for (u32 r = 0; r < ranks_; ++r) {
      if (trace_)
        trace_->push_back(DdrCommand{DdrCommand::kRefresh, window, r, 0, 0, -1});
      for (u32 b = 0; b < banks_per_rank_; ++b) {
        Bank& bank = banks_[static_cast<size_t>(r) * banks_per_rank_ + b];
        // Refresh implies precharge-all, but a row activated just before the
        // window still gets its tRAS before the implicit close.
        Cycle close_at = window;
        if (bank.open_row >= 0) {
          close_at = std::max(window, bank.act_at + c_ras_);
          bank.open_row = -1;
          precharges_++;
          open_banks_--;
        }
        bank.act_ready = std::max(bank.act_ready, close_at + c_rfc_);
        bank.col_ready = std::max(bank.col_ready, close_at + c_rfc_);
      }
    }
    refresh_windows_++;
    applied++;
    next_refresh_ += c_refi_;
  }
  return applied;
}

DdrBackend::ColSchedule DdrBackend::schedule_column(Cycle t0, Addr addr,
                                                    u32 transfer, bool is_write,
                                                    Outcome* o) {
  u32 bank_idx;
  i64 row;
  split(addr, &bank_idx, &row);
  Bank& bank = banks_[bank_idx];
  const u32 rank = bank_idx / banks_per_rank_;
  const u32 group = (bank_idx % banks_per_rank_) % bank_groups_;

  ColSchedule cs{};
  if (bank.open_row == row) {
    cs.row_hit = true;
    o->row_hits++;
    cs.col_at = std::max({t0, bank.col_ready, ccd_ready(rank, group)});
    cs.first_cmd = cs.col_at;
  } else {
    o->row_misses++;
    Cycle act_ready = std::max(bank.act_ready, t0);
    if (bank.open_row >= 0) {
      // Close the open row first: tRAS since its ACT, and the bank must be
      // done with the previous column burst.
      const Cycle pre_at =
          std::max({t0, bank.act_at + c_ras_, bank.col_ready});
      trace(DdrCommand::kPre, pre_at, bank_idx, bank.open_row);
      precharges_++;
      open_banks_--;
      act_ready = std::max(act_ready, pre_at + c_rp_);
    }
    // tRC: ACT-to-ACT on one bank.
    Cycle act_at = act_ready;
    if (bank.ever_activated) act_at = std::max(act_at, bank.act_at + c_rc_);
    trace(DdrCommand::kAct, act_at, bank_idx, row);
    activations_++;
    o->activations++;
    open_banks_++;
    bank.act_at = act_at;
    bank.ever_activated = true;
    bank.open_row = row;
    cs.col_at = std::max(act_at + c_rcd_, ccd_ready(rank, group));
    cs.first_cmd = act_at;
  }
  trace(is_write ? DdrCommand::kWrite : DdrCommand::kRead, cs.col_at, bank_idx,
        row);
  // Column commands pipeline: the bank can take the next one after the burst.
  bank.col_ready = cs.col_at + transfer;
  last_col_at_ = cs.col_at;
  last_col_rank_ = rank;
  last_col_group_ = group;
  have_last_col_ = true;
  cs.data_ready = cs.col_at + c_cas_;
  return cs;
}

void DdrBackend::drain_writes(Cycle now, u64 target, Outcome* o) {
  while (write_queue_.size() > target) {
    const PendingWrite w = write_queue_.front();
    write_queue_.pop_front();
    const u32 transfer = transfer_cycles(w.bytes);
    const ColSchedule cs = schedule_column(now, w.addr, transfer,
                                           /*is_write=*/true, o);
    // The write burst occupies the shared data bus behind everything queued.
    const Cycle wr_start = std::max(cs.data_ready,
                                    std::max(bus_busy_until_, now));
    bus_busy_until_ = wr_start + transfer;
  }
  // Draining services the queue in order, which resets the FR-FCFS
  // consecutive-bypass run.
  consecutive_bypasses_ = 0;
}

ChannelBackend::Outcome DdrBackend::request(Cycle now, Addr addr, u32 bytes,
                                            bool is_write, bool high_priority,
                                            Cycle earliest) {
  Outcome o;
  o.refreshes = catch_up_refresh(now);
  const Cycle issue = std::max(now, earliest);
  const u32 transfer = transfer_cycles(bytes);

  if (is_write) {
    // Posted write: the result reflects buffer accept; the bank and bus work
    // happens in a later drain burst. Entry exactly at the high watermark,
    // exit exactly at the low one.
    write_queue_.push_back(PendingWrite{addr, bytes});
    if (write_queue_.size() >= params_.wq_high) {
      drain_writes(now, params_.wq_low, &o);
      write_drains_++;
    }
    const Cycle accept = issue + controller_overhead_;
    o.result = MemResult{accept, accept + 1, accept + 1, accept + 1};
    return o;
  }

  const Cycle t0 = issue + controller_overhead_;
  const ColSchedule cs = schedule_column(t0, addr, transfer,
                                         /*is_write=*/false, &o);

  // FR-FCFS bus scheduling: a read normally queues behind the bus cursor; a
  // row hit whose data is ready before the queue tail may bypass it (the
  // controller reorders it ahead), but at most frfcfs_cap consecutive times
  // so queued row-miss requests cannot starve. Bypass or not, the slot's
  // transfer time is charged to the cursor, keeping bandwidth conservation
  // exact.
  const Cycle base = std::max(bus_busy_until_, now);
  Cycle queue_from = base;
  if (priority_enabled_ && high_priority) {
    const Cycle credit = std::min<Cycle>(backlog(now) / 2, 150);
    queue_from =
        queue_from > now + credit ? queue_from - credit : std::min(queue_from, now);
  }
  Cycle data_start;
  // Fault-injection site (check/fault.h): ignore the starvation cap, letting
  // row hits bypass the queue indefinitely. Caught by the level-1 check
  // below and, in any build, by the max_bypass_run() property that
  // tests/test_ddr_backend.cpp and tools/h2fault assert.
  const bool cap_ok = consecutive_bypasses_ < params_.frfcfs_cap ||
                      fault::at(fault::Kind::SchedStarve);
  if (cs.row_hit && cs.data_ready < queue_from && cap_ok) {
    data_start = cs.data_ready;
    consecutive_bypasses_++;
    frfcfs_bypasses_++;
    max_bypass_run_ = std::max(max_bypass_run_, consecutive_bypasses_);
  } else {
    data_start = std::max(cs.data_ready, queue_from);
    consecutive_bypasses_ = 0;
  }
  bus_busy_until_ = base + transfer;

  H2_CHECK(1, consecutive_bypasses_ <= params_.frfcfs_cap,
           "ddr channel %u cycle %llu: FR-FCFS starvation cap violated "
           "(%llu consecutive row-hit bypasses > cap %u)",
           id_, static_cast<unsigned long long>(now),
           static_cast<unsigned long long>(consecutive_bypasses_),
           params_.frfcfs_cap);

  const u32 critical = transfer_cycles(std::min<u32>(bytes, 64));
  o.result = MemResult{cs.first_cmd, data_start + critical,
                       data_start + transfer, data_start + transfer};
  return o;
}

ChannelBackend::Outcome DdrBackend::drain(Cycle now) {
  Outcome o;
  o.refreshes = catch_up_refresh(now);
  drain_writes(now, 0, &o);
  return o;
}

void DdrBackend::save(ckpt::CkptWriter& w) const {
  w.put_bool(priority_enabled_);
  w.put_pod_vec(banks_);
  w.put_u64(write_queue_.size());
  for (const PendingWrite& pw : write_queue_) {
    w.put_u64(pw.addr);
    w.put_u32(pw.bytes);
  }
  w.put_u64(bus_busy_until_);
  w.put_u64(next_refresh_);
  w.put_u64(last_col_at_);
  w.put_u32(last_col_rank_);
  w.put_u32(last_col_group_);
  w.put_bool(have_last_col_);
  w.put_u64(consecutive_bypasses_);
  w.put_u64(max_bypass_run_);
  w.put_u64(frfcfs_bypasses_);
  w.put_u64(write_drains_);
  w.put_u64(refresh_windows_);
  w.put_u64(activations_);
  w.put_u64(precharges_);
  w.put_u32(open_banks_);
}

void DdrBackend::load(ckpt::CkptReader& r) {
  priority_enabled_ = r.get_bool();
  r.get_pod_vec_exact(banks_);
  const u64 wq = r.get_u64();
  if (wq > params_.wq_depth) {
    r.fail("posted-write queue length " + std::to_string(wq) +
           " exceeds configured depth " + std::to_string(params_.wq_depth));
  }
  write_queue_.clear();
  for (u64 i = 0; i < wq; ++i) {
    PendingWrite pw;
    pw.addr = r.get_u64();
    pw.bytes = r.get_u32();
    write_queue_.push_back(pw);
  }
  bus_busy_until_ = r.get_u64();
  next_refresh_ = r.get_u64();
  last_col_at_ = r.get_u64();
  last_col_rank_ = r.get_u32();
  last_col_group_ = r.get_u32();
  have_last_col_ = r.get_bool();
  consecutive_bypasses_ = r.get_u64();
  max_bypass_run_ = r.get_u64();
  frfcfs_bypasses_ = r.get_u64();
  write_drains_ = r.get_u64();
  refresh_windows_ = r.get_u64();
  activations_ = r.get_u64();
  precharges_ = r.get_u64();
  open_banks_ = r.get_u32();
}

}  // namespace h2
