// Higher-fidelity DDR channel backend (mem.backend = ddr).
//
// Where FastBackend collapses the controller into two busy-until cursors,
// this model issues an explicit command schedule per request and enforces
// JEDEC-style legality between commands:
//  - per-bank tRC/tRAS/tRP/tRCD/tCAS: an ACT may not follow the previous
//    ACT on its bank within tRC, a precharge may not cut an activation
//    short of tRAS, and a fresh activation waits tRP after the precharge;
//  - bank groups: consecutive column commands pay tCCD_L inside one bank
//    group and the shorter tCCD_S across groups;
//  - all-bank refresh: every tREFI each rank stalls for tRFC, closing all
//    rows (implicit precharge). Refresh is caught up lazily at request and
//    drain points, and the applied-window count is a conserved quantity the
//    differential oracle checks against the elapsed-window arithmetic;
//  - FR-FCFS: a row-hit read may bypass the bus-queue tail and start as
//    soon as its bank data is ready, but never more than `frfcfs_cap`
//    consecutive times (starvation cap); bypassed slots still charge the
//    bus cursor, so bandwidth accounting stays exact;
//  - posted writes with watermark drain: writes complete at buffer accept;
//    once the queue reaches `wq_high` entries a drain burst schedules
//    queued writes (bank commands + bus slots) until occupancy falls back
//    to `wq_low`, inflating the cursors later reads observe.
//
// The command stream can be recorded via set_trace(); the property tests in
// tests/test_ddr_backend.cpp verify command legality directly from that log.
#pragma once

#include <deque>
#include <vector>

#include "mem/channel.h"

namespace h2 {

/// One DRAM command as issued by DdrBackend (trace hook).
struct DdrCommand {
  enum Kind : u8 { kAct, kPre, kRead, kWrite, kRefresh };
  Kind kind;
  Cycle at;        ///< core cycle the command issues
  u32 rank;
  u32 bank_group;  ///< group within the rank (0 for kRefresh)
  u32 bank;        ///< global bank index (0 for kRefresh)
  i64 row;         ///< -1 for kRefresh
};

class DdrBackend final : public ChannelBackend {
 public:
  DdrBackend(const DramTiming& timing, double core_ghz, u32 id,
             const DdrParams& params);

  Outcome request(Cycle now, Addr addr, u32 bytes, bool is_write,
                  bool high_priority, Cycle earliest) override;
  Outcome drain(Cycle now) override;
  Cycle backlog(Cycle now) const override {
    return bus_busy_until_ > now ? bus_busy_until_ - now : 0;
  }
  u64 pending() const override { return write_queue_.size(); }
  u64 refresh_windows() const override { return refresh_windows_; }
  u64 expected_refresh_windows(Cycle now) const override {
    return c_refi_ > 0 ? now / c_refi_ : 0;
  }
  u64 activations() const override { return activations_; }
  u64 precharges() const override { return precharges_; }
  u32 open_banks() const override { return open_banks_; }

  /// Records every issued command into `sink` (nullptr to stop). The sink is
  /// appended to, never cleared.
  void set_trace(std::vector<DdrCommand>* sink) { trace_ = sink; }

  const DdrParams& params() const { return params_; }
  u32 write_queue_depth() const { return static_cast<u32>(write_queue_.size()); }
  /// Row-hit reads that jumped the bus-queue tail.
  u64 frfcfs_bypasses() const { return frfcfs_bypasses_; }
  /// Longest run of consecutive bypasses observed — must never exceed
  /// frfcfs_cap unless a sched-starve fault is armed.
  u64 max_bypass_run() const { return max_bypass_run_; }
  /// Watermark-triggered drain bursts (excludes the final drain()).
  u64 write_drains() const { return write_drains_; }

  void save(ckpt::CkptWriter& w) const override;
  void load(ckpt::CkptReader& r) override;

 private:
  struct Bank {
    i64 open_row = -1;
    Cycle act_at = 0;     ///< time of the most recent ACT
    Cycle act_ready = 0;  ///< earliest next ACT (tRP/tRFC enforced)
    Cycle col_ready = 0;  ///< earliest next column command (bank occupancy)
    bool ever_activated = false;
  };

  struct PendingWrite {
    Addr addr;
    u32 bytes;
  };

  /// Bank-command schedule for one column access: PRE/ACT as needed, then
  /// the column command no earlier than the bank-group tCCD window allows.
  struct ColSchedule {
    Cycle first_cmd;   ///< when the first command (ACT or column) issues
    Cycle col_at;      ///< column command time
    Cycle data_ready;  ///< col_at + tCAS
    bool row_hit;
  };

  ColSchedule schedule_column(Cycle t0, Addr addr, u32 transfer, bool is_write,
                              Outcome* o);
  /// Applies refresh windows due by `now` to every rank; returns the count.
  u64 catch_up_refresh(Cycle now);
  /// Pops writes from the queue and schedules them until `target` entries
  /// remain, pushing the bus cursor past their transfers.
  void drain_writes(Cycle now, u64 target, Outcome* o);
  void split(Addr addr, u32* bank_idx, i64* row) const;
  Cycle ccd_ready(u32 rank, u32 group) const;
  void trace(DdrCommand::Kind kind, Cycle at, u32 bank_idx, i64 row);

  DdrParams params_;
  u32 c_rcd_, c_cas_, c_rp_, c_ras_, c_rc_, c_ccd_s_, c_ccd_l_;
  u32 c_refi_ = 0, c_rfc_ = 0;
  u32 banks_per_rank_, bank_groups_, ranks_;

  std::vector<Bank> banks_;
  std::deque<PendingWrite> write_queue_;
  Cycle bus_busy_until_ = 0;
  Cycle next_refresh_ = 0;

  // consecutive column-command separation (tCCD_S/tCCD_L)
  Cycle last_col_at_ = 0;
  u32 last_col_rank_ = 0;
  u32 last_col_group_ = 0;
  bool have_last_col_ = false;

  u64 consecutive_bypasses_ = 0;
  u64 max_bypass_run_ = 0;
  u64 frfcfs_bypasses_ = 0;
  u64 write_drains_ = 0;

  u64 refresh_windows_ = 0;
  u64 activations_ = 0;
  u64 precharges_ = 0;
  u32 open_banks_ = 0;

  std::vector<DdrCommand>* trace_ = nullptr;
};

}  // namespace h2
