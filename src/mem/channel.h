// Single DRAM channel timing model, split into a stats/energy facade
// (Channel) and a pluggable timing backend (ChannelBackend).
//
// Backends:
//  - FastBackend (mem/channel.cpp): the original analytic model. Requests
//    reserve bank and data-bus slots in arrival order via busy-until cursors.
//    A request pays the row-buffer-dependent command latency on its bank,
//    then queues for the shared data bus. This captures the three DRAM
//    effects the paper's insights depend on: bank-level parallelism,
//    row-buffer locality, and data-bus bandwidth saturation — at a tiny
//    fraction of the cost of a cycle-accurate controller.
//  - DdrBackend (mem/ddr_backend.h): a higher-fidelity controller model with
//    per-bank tRC/tRAS/tRP command legality, bank groups (tCCD_S/tCCD_L),
//    all-bank refresh stalls, FR-FCFS row-hit prioritisation with a
//    starvation cap, and posted writes with watermark-driven drain bursts.
//
// Reads are prioritised over writes, as in real controllers (write buffering
// with opportunistic drain): reads queue only behind reads plus a bounded
// share of write traffic, while writes yield to the read stream. This keeps
// latency-critical demand reads from spuriously serialising behind bulk
// fill/writeback traffic, while still charging that traffic's bandwidth.
//
// Priority classes: when enabled (HAShCache-style CPU prioritisation),
// high-priority requests additionally receive a bounded queue-jump credit
// against the current backlog.
//
// The facade owns every statistic and all energy accounting; backends return
// per-request command counts (row hits/misses, activations, refresh windows)
// and the facade folds them into its counters in a fixed order, so swapping
// the backend cannot perturb floating-point accumulation for the fast model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/ckpt_fwd.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/dram_timing.h"

namespace h2 {

/// Timing outcome of one channel request (see Channel::request).
struct MemResult {
  Cycle start;       ///< when the command began service at the bank
  Cycle first_data;  ///< when the critical first 64 B arrive (incl. priority penalty)
  Cycle done;        ///< when the last byte has transferred (incl. priority penalty)
  Cycle done_sched;  ///< physical transfer end, without the priority penalty —
                     ///< use this to schedule dependent transfers
};

/// Which timing backend a channel runs (mem.backend config key).
enum class ChannelBackendKind : u8 { Fast = 0, Ddr = 1 };

const char* to_string(ChannelBackendKind k);
/// Parses "fast"/"ddr"; returns false on anything else.
bool parse_backend_kind(const std::string& s, ChannelBackendKind* out);

/// Scheduler knobs for the DDR backend ([ddr] config section). The timing
/// override fields patch the tier's DramTiming preset when non-zero.
struct DdrParams {
  u32 frfcfs_cap = 4;  ///< max consecutive row-hit queue bypasses (FR-FCFS starvation cap)
  u32 wq_depth = 64;   ///< posted-write buffer entries
  u32 wq_high = 48;    ///< drain burst starts when occupancy reaches this
  u32 wq_low = 16;     ///< ... and stops once occupancy is back at this
  // DramTiming overrides (device cycles / counts); 0 = keep the preset value.
  u32 t_ras = 0;
  u32 t_ccd_s = 0;
  u32 t_ccd_l = 0;
  u32 bank_groups = 0;
  u32 t_refi = 0;
  u32 t_rfc = 0;
};

/// Per-channel timing model. Owns no user-facing statistics: it reports what
/// happened per call through Outcome and the facade does the accounting.
/// The cumulative command counters (activations/precharges/refresh windows)
/// are architectural — they survive Channel::reset_stats() so conservation
/// laws over them hold for the whole lifetime of the channel.
class ChannelBackend {
 public:
  struct Outcome {
    MemResult result{};
    u32 row_hits = 0;     ///< column commands that hit an open row in this call
    u32 row_misses = 0;   ///< column commands that required an activation
    u32 activations = 0;  ///< ACT commands issued in this call
    u64 refreshes = 0;    ///< refresh windows applied in this call
  };

  ChannelBackend(const DramTiming& timing, double core_ghz, u32 id);
  virtual ~ChannelBackend() = default;

  virtual Outcome request(Cycle now, Addr addr, u32 bytes, bool is_write,
                          bool high_priority, Cycle earliest) = 0;

  /// Completes all buffered work (posted writes) and applies refresh windows
  /// due by `now`. FastBackend buffers nothing, so its drain only catches up
  /// refresh.
  virtual Outcome drain(Cycle now) = 0;

  /// Read-visible queueing backlog at `now` (queueing-delay estimate).
  virtual Cycle backlog(Cycle now) const = 0;

  virtual void set_priority_enabled(bool on) { priority_enabled_ = on; }

  /// Requests accepted but not yet scheduled (posted writes). Zero for
  /// backends without internal queues.
  virtual u64 pending() const { return 0; }

  // --- conserved command quantities (differential oracle) ---------------
  /// Refresh windows applied so far (per refresh domain — every rank of a
  /// channel sees the same count).
  virtual u64 refresh_windows() const = 0;
  /// Arithmetic mirror of the refresh catch-up loop: how many windows MUST
  /// have elapsed by `now`. Fault sites live in the loop, never here, so the
  /// oracle can diff the two.
  virtual u64 expected_refresh_windows(Cycle now) const = 0;
  /// Cumulative ACT commands (fast model: row misses).
  virtual u64 activations() const = 0;
  /// Cumulative precharges, counting implicit closes (refresh auto-precharge).
  virtual u64 precharges() const = 0;
  /// Banks currently holding an open row. Pairing law for every backend:
  /// activations() == precharges() + open_banks().
  virtual u32 open_banks() const = 0;

  /// Checkpoint support: every backend must round-trip its full timing
  /// state — cursors, per-bank timers, refresh debt, posted-write queue —
  /// so a restored run issues the exact same command stream.
  virtual void save(ckpt::CkptWriter& w) const = 0;
  virtual void load(ckpt::CkptReader& r) = 0;

 protected:
  /// Transfer cycles for a request of `bytes`: max(1, ceil(bytes / bus
  /// bytes-per-core-cycle)). Small request sizes recur millions of times, so
  /// the ctor precomputes a table with that exact expression; larger sizes
  /// fall back to computing it inline.
  u32 transfer_cycles(u32 bytes) const;

  /// Converts device command-clock cycles to core cycles.
  u32 to_core(u32 dev) const;

  DramTiming timing_;
  u32 id_;
  double core_ghz_;
  double core_cycles_per_device_cycle_;
  double bytes_per_core_cycle_;
  u32 controller_overhead_;  ///< fixed queue/PHY cycles per request
  bool priority_enabled_ = false;
  std::vector<u32> transfer_memo_;
};

/// The original analytic busy-until-cursor model (see file comment). Timing
/// is bit-identical to the pre-backend-split Channel implementation.
class FastBackend final : public ChannelBackend {
 public:
  FastBackend(const DramTiming& timing, double core_ghz, u32 id);

  Outcome request(Cycle now, Addr addr, u32 bytes, bool is_write,
                  bool high_priority, Cycle earliest) override;
  Outcome drain(Cycle now) override;
  Cycle backlog(Cycle now) const override {
    return read_busy_until_ > now ? read_busy_until_ - now : 0;
  }
  u64 refresh_windows() const override { return refresh_windows_; }
  u64 expected_refresh_windows(Cycle now) const override {
    return c_refi_ > 0 ? now / c_refi_ : 0;
  }
  u64 activations() const override { return activations_; }
  u64 precharges() const override { return precharges_; }
  u32 open_banks() const override { return open_banks_; }

  void save(ckpt::CkptWriter& w) const override;
  void load(ckpt::CkptReader& r) override;

 private:
  struct Bank {
    Cycle busy_until = 0;
    i64 open_row = -1;
  };

  /// Applies any refresh windows due by `now` (all-bank refresh: both bus
  /// queues stall for tRFC once per tREFI). Returns the number applied.
  u64 apply_refresh(Cycle now);

  u32 c_rcd_, c_cas_, c_rp_;

  /// Splits an address into (row_global, bank, row). Row-buffer bytes and
  /// bank count are usually powers of two, so the div/mod strength-reduces
  /// to shift/mask when it can.
  u32 row_shift_ = 0;   ///< log2(row_bytes) when a power of two, else 0
  u32 bank_shift_ = 0;  ///< log2(total banks) when a power of two, else 0
  bool pow2_geometry_ = false;

  std::vector<Bank> banks_;
  Cycle read_busy_until_ = 0;
  Cycle write_busy_until_ = 0;
  Cycle next_refresh_ = 0;
  u32 c_refi_ = 0;
  u32 c_rfc_ = 0;
  u64 refresh_windows_ = 0;
  u64 activations_ = 0;
  u64 precharges_ = 0;
  u32 open_banks_ = 0;
};

class Channel {
 public:
  using Result = MemResult;

  Channel(const DramTiming& timing, double core_ghz, u32 id,
          ChannelBackendKind backend = ChannelBackendKind::Fast,
          const DdrParams& ddr = {});
  ~Channel();

  /// Reserves bank + bus resources for a `bytes`-sized transfer. `now` is
  /// the true issue time (used for queue-backlog accounting); `earliest`
  /// optionally delays the start for chained dependencies (e.g. a data
  /// access that must follow a metadata read) WITHOUT pushing the shared
  /// queue cursors into the future. `high_priority` only matters when the
  /// priority model is enabled.
  Result request(Cycle now, Addr addr, u32 bytes, bool is_write,
                 bool high_priority = true, Cycle earliest = 0);

  /// Completes buffered backend work (posted writes) and catches refresh up
  /// to `now`. Call once at a drain point before comparing conserved
  /// quantities; a no-op for the fast backend apart from refresh catch-up.
  void drain(Cycle now);

  /// Enables the two-class priority model (CPU over GPU).
  void set_priority_enabled(bool on) { backend_->set_priority_enabled(on); }

  /// Read-visible backlog on the data bus at `now` (queueing-delay estimate).
  Cycle backlog(Cycle now) const { return backend_->backlog(now); }

  u32 id() const { return id_; }
  const DramTiming& timing() const { return timing_; }
  ChannelBackendKind backend_kind() const { return kind_; }
  ChannelBackend& backend() { return *backend_; }
  const ChannelBackend& backend() const { return *backend_; }

  // --- statistics ------------------------------------------------------
  u64 bytes_transferred(Requestor r) const { return class_bytes_[static_cast<u32>(r)]; }
  u64 total_bytes() const { return class_bytes_[0] + class_bytes_[1]; }
  u64 row_hits() const { return row_hits_; }
  u64 row_misses() const { return row_misses_; }
  u64 requests() const { return requests_; }
  u64 refreshes() const { return refreshes_; }
  /// Posted writes accepted but not yet scheduled by the backend.
  u64 pending() const { return backend_->pending(); }
  /// Dynamic energy in picojoules (RD/WR per bit + ACT/PRE per activation).
  double dynamic_energy_pj() const { return dynamic_energy_pj_; }
  /// Static (background) energy accumulated up to `now`.
  double static_energy_pj(Cycle now) const;
  void reset_stats();

  /// Checkpoint support: facade counters (energy as raw double bits) plus
  /// the backend's timing state.
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

  // --- conserved command quantities (forwarded from the backend) --------
  u64 refresh_windows() const { return backend_->refresh_windows(); }
  u64 expected_refresh_windows(Cycle now) const {
    return backend_->expected_refresh_windows(now);
  }
  u64 activations() const { return backend_->activations(); }
  u64 precharges() const { return backend_->precharges(); }
  u32 open_banks() const { return backend_->open_banks(); }

  /// Tags the bytes of the next request with a requestor for accounting.
  void set_requestor(Requestor r) { current_requestor_ = r; }

 private:
  /// Folds a backend outcome into the facade counters in the fixed order the
  /// pre-split Channel used: refresh energy (one add per window), hit/miss
  /// counts, activation energy (one add per ACT).
  void apply_accounting(const ChannelBackend::Outcome& o);

  DramTiming timing_;
  u32 id_;
  double core_ghz_;
  ChannelBackendKind kind_;
  std::unique_ptr<ChannelBackend> backend_;

  Requestor current_requestor_ = Requestor::Cpu;
  u64 class_bytes_[2] = {0, 0};
  u64 row_hits_ = 0;
  u64 row_misses_ = 0;
  u64 requests_ = 0;
  u64 refreshes_ = 0;
  /// Posted writes pending at the last reset_stats(): their hits/misses land
  /// after the reset without a matching requests_ increment, so the
  /// conservation check credits them explicitly.
  u64 reset_credit_ = 0;
  double dynamic_energy_pj_ = 0.0;
};

}  // namespace h2
