// Single DRAM channel timing model.
//
// Requests reserve bank and data-bus slots in arrival order via busy-until
// cursors. A request pays the row-buffer-dependent command latency on its
// bank, then queues for the shared data bus. This captures the three DRAM
// effects the paper's insights depend on: bank-level parallelism, row-buffer
// locality, and data-bus bandwidth saturation — at a tiny fraction of the
// cost of a cycle-accurate controller.
//
// Reads are prioritised over writes, as in real controllers (write buffering
// with opportunistic drain): reads queue only behind reads plus a bounded
// share of write traffic, while writes yield to the read stream. This keeps
// latency-critical demand reads from spuriously serialising behind bulk
// fill/writeback traffic, while still charging that traffic's bandwidth.
//
// Priority classes: when enabled (HAShCache-style CPU prioritisation),
// high-priority requests additionally receive a bounded queue-jump credit
// against the current backlog.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/dram_timing.h"

namespace h2 {

class Channel {
 public:
  struct Result {
    Cycle start;       ///< when the command began service at the bank
    Cycle first_data;  ///< when the critical first 64 B arrive (incl. priority penalty)
    Cycle done;        ///< when the last byte has transferred (incl. priority penalty)
    Cycle done_sched;  ///< physical transfer end, without the priority penalty —
                       ///< use this to schedule dependent transfers
  };

  Channel(const DramTiming& timing, double core_ghz, u32 id);

  /// Reserves bank + bus resources for a `bytes`-sized transfer. `now` is
  /// the true issue time (used for queue-backlog accounting); `earliest`
  /// optionally delays the start for chained dependencies (e.g. a data
  /// access that must follow a metadata read) WITHOUT pushing the shared
  /// queue cursors into the future. `high_priority` only matters when the
  /// priority model is enabled.
  Result request(Cycle now, Addr addr, u32 bytes, bool is_write,
                 bool high_priority = true, Cycle earliest = 0);

  /// Enables the two-class priority model (CPU over GPU).
  void set_priority_enabled(bool on) { priority_enabled_ = on; }

  /// Read-visible backlog on the data bus at `now` (queueing-delay estimate).
  Cycle backlog(Cycle now) const {
    return read_busy_until_ > now ? read_busy_until_ - now : 0;
  }

  u32 id() const { return id_; }
  const DramTiming& timing() const { return timing_; }

  // --- statistics ------------------------------------------------------
  u64 bytes_transferred(Requestor r) const { return class_bytes_[static_cast<u32>(r)]; }
  u64 total_bytes() const { return class_bytes_[0] + class_bytes_[1]; }
  u64 row_hits() const { return row_hits_; }
  u64 row_misses() const { return row_misses_; }
  u64 requests() const { return requests_; }
  u64 refreshes() const { return refreshes_; }
  /// Dynamic energy in picojoules (RD/WR per bit + ACT/PRE per activation).
  double dynamic_energy_pj() const { return dynamic_energy_pj_; }
  /// Static (background) energy accumulated up to `now`.
  double static_energy_pj(Cycle now) const;
  void reset_stats();

  /// Tags the bytes of the next request with a requestor for accounting.
  void set_requestor(Requestor r) { current_requestor_ = r; }

 private:
  struct Bank {
    Cycle busy_until = 0;
    i64 open_row = -1;
  };

  DramTiming timing_;
  u32 id_;
  double core_cycles_per_device_cycle_;
  double bytes_per_core_cycle_;
  u32 c_rcd_, c_cas_, c_rp_;
  u32 controller_overhead_;  ///< fixed queue/PHY cycles per request

  /// Transfer cycles for a request of `bytes`: max(1, ceil(bytes / bus
  /// bytes-per-core-cycle)). Small request sizes recur millions of times, so
  /// the ctor precomputes a table with that exact expression; larger sizes
  /// fall back to computing it inline.
  u32 transfer_cycles(u32 bytes) const;

  /// Splits an address into (row_global, bank, row). Row-buffer bytes and
  /// bank count are usually powers of two, so the div/mod strength-reduces
  /// to shift/mask when it can.
  u32 row_shift_ = 0;   ///< log2(row_bytes) when a power of two, else 0
  u32 bank_shift_ = 0;  ///< log2(total banks) when a power of two, else 0
  bool pow2_geometry_ = false;
  std::vector<u32> transfer_memo_;

  /// Applies any refresh windows due by `now` (all-bank refresh: both bus
  /// queues stall for tRFC once per tREFI).
  void apply_refresh(Cycle now);

  std::vector<Bank> banks_;
  Cycle read_busy_until_ = 0;
  Cycle write_busy_until_ = 0;
  Cycle next_refresh_ = 0;
  u32 c_refi_ = 0;
  u32 c_rfc_ = 0;
  u64 refreshes_ = 0;
  bool priority_enabled_ = false;

  Requestor current_requestor_ = Requestor::Cpu;
  u64 class_bytes_[2] = {0, 0};
  u64 row_hits_ = 0;
  u64 row_misses_ = 0;
  u64 requests_ = 0;
  double dynamic_energy_pj_ = 0.0;
  double core_ghz_;
};

}  // namespace h2
