#include "mem/dram_timing.h"

namespace h2 {

DramTiming hbm2e_timing() {
  DramTiming t;
  t.name = "HBM2E";
  t.device_mhz = 1600.0;
  t.t_rcd = t.t_cas = t.t_rp = 23;
  t.bus_bytes_per_device_cycle = 32;  // 128-bit DDR bus -> 51.2 GB/s @ 1600 MHz
  t.banks_per_rank = 16;
  t.ranks = 1;
  t.row_bytes = 1024;
  t.rd_pj_per_bit = t.wr_pj_per_bit = 6.4;
  t.act_nj = 15.0;
  // DDR-backend command legality: tRAS ~33 ns, pseudo-channel bank groups
  // with a short same-group column gap (HBM's tCCD_L is mild vs DDR4's).
  t.t_ras = 53;
  t.t_ccd_s = 2;
  t.t_ccd_l = 4;
  t.bank_groups = 4;
  // HBM2E stacks draw several watts of background (periphery + refresh)
  // power with the clock on; ~250 mW per channel puts a 16-channel stack at
  // ~4 W, consistent with published stack-level figures.
  t.static_mw_per_channel = 250.0;
  return t;
}

DramTiming hbm3_timing() {
  DramTiming t = hbm2e_timing();
  t.name = "HBM3";
  // Doubled bandwidth with scaled timing parameters (Section VI-A): the
  // per-pin rate doubles while absolute command latencies stay comparable.
  t.bus_bytes_per_device_cycle = 64;
  t.t_rcd = t.t_cas = t.t_rp = 23;
  t.device_mhz = 1600.0;
  t.static_mw_per_channel = 300.0;
  return t;
}

DramTiming ddr4_3200_timing() {
  DramTiming t;
  t.name = "DDR4-3200";
  t.device_mhz = 1600.0;
  t.t_rcd = t.t_cas = t.t_rp = 22;
  t.bus_bytes_per_device_cycle = 16;  // 64-bit DDR bus -> 25.6 GB/s
  t.banks_per_rank = 16;
  t.ranks = 2;
  t.row_bytes = 8192;
  t.rd_pj_per_bit = t.wr_pj_per_bit = 33.0;
  t.act_nj = 15.0;
  // JEDEC DDR4-3200AA: tRAS 32.5 ns, tCCD_S 4 / tCCD_L 8 command clocks,
  // 4 bank groups per rank.
  t.t_ras = 52;
  t.t_ccd_s = 4;
  t.t_ccd_l = 8;
  t.bank_groups = 4;
  // Two-rank DDR4 channels idle near 0.4 W (registers + background refresh).
  t.static_mw_per_channel = 400.0;
  return t;
}

DramTiming grouped(const DramTiming& base, u32 group) {
  DramTiming t = base;
  t.name = base.name + "x" + std::to_string(group);
  t.bus_bytes_per_device_cycle = base.bus_bytes_per_device_cycle * group;
  t.banks_per_rank = base.banks_per_rank * group;
  // Each grouped physical channel brings its own bank groups along, so the
  // banks-per-group ratio stays that of the base device.
  t.bank_groups = base.bank_groups * group;
  t.static_mw_per_channel = base.static_mw_per_channel * group;
  return t;
}

}  // namespace h2
