// The two-tier physical memory: fast superchannels (HBM) + slow channels
// (DDR). Owns all Channel objects, performs address-to-channel mapping for
// the slow tier, and aggregates traffic/energy statistics per tier and per
// requestor. The hybrid memory controller decides *which* fast superchannel
// a block lives on (that mapping is the heart of Hydrogen's decoupled
// partitioning), so fast accesses name their superchannel explicitly.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "mem/channel.h"

namespace h2 {

struct MemSystemConfig {
  DramTiming fast_channel_timing;   ///< per physical fast channel
  DramTiming slow_channel_timing;   ///< per physical slow channel
  u32 fast_channels = 16;           ///< physical fast channels
  u32 fast_group = 4;               ///< physical channels per superchannel
  u32 slow_channels = 4;
  double core_ghz = 3.2;
  bool cpu_priority = false;        ///< HAShCache-style CPU prioritisation
  u64 block_bytes = 256;            ///< hybrid-memory block (slow-tier interleave unit)
  ChannelBackendKind backend = ChannelBackendKind::Fast;  ///< per-channel timing model
  DdrParams ddr;                    ///< DDR-backend knobs ([ddr] config section)

  static MemSystemConfig table1_default();
  static MemSystemConfig table1_hbm3();
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemSystemConfig& cfg);

  u32 num_fast_superchannels() const { return static_cast<u32>(fast_.size()); }
  u32 num_slow_channels() const { return static_cast<u32>(slow_.size()); }

  /// Access `bytes` at `addr` on a specific fast superchannel. `now` is the
  /// true issue time; `earliest` optionally delays the start for chained
  /// dependencies (see Channel::request).
  Channel::Result fast_access(Cycle now, u32 superchannel, Addr addr, u32 bytes,
                              bool is_write, Requestor who, Cycle earliest = 0);

  /// Access `bytes` at `addr` in the slow tier; the channel is derived from
  /// the address (block-interleaved).
  Channel::Result slow_access(Cycle now, Addr addr, u32 bytes, bool is_write,
                              Requestor who, Cycle earliest = 0);

  u32 slow_channel_of(Addr addr) const {
    return static_cast<u32>((addr / cfg_.block_bytes) % slow_.size());
  }

  /// Current queueing backlog (cycles) summed over the slow channels — used
  /// by adaptive policies as a congestion signal.
  Cycle slow_backlog(Cycle now) const;
  Cycle fast_backlog(Cycle now) const;

  // --- statistics ------------------------------------------------------
  u64 tier_bytes(Tier t) const;
  u64 tier_bytes(Tier t, Requestor r) const;
  double dynamic_energy_pj(Tier t) const;
  double static_energy_pj(Tier t, Cycle now) const;
  double total_energy_pj(Cycle now) const;
  u64 tier_row_hits(Tier t) const;
  u64 tier_row_misses(Tier t) const;
  void reset_stats();

  /// Flushes backend-internal work (posted writes) and catches refresh up to
  /// `now` on every channel. Call at a drain point before reading conserved
  /// quantities; a refresh catch-up no-op for the fast backend.
  void drain_backends(Cycle now);

  /// Requests issued through this facade since the last reset_stats(), per
  /// channel. The invariant layer compares these against each Channel's own
  /// completion counters (see audit()).
  u64 issued_fast(u32 superchannel) const { return issued_fast_[superchannel]; }
  u64 issued_slow(u32 channel) const { return issued_slow_[channel]; }

  /// Request-conservation audit (H2_CHECK level 2): every request issued via
  /// fast_access/slow_access must be accounted as completed by its channel —
  /// the timing model has no queues of its own, so in-flight == 0 at any
  /// drain point and issued must equal the channel's request count exactly.
  void audit(Cycle now) const;

  const MemSystemConfig& config() const { return cfg_; }
  Channel& fast_channel(u32 i) { return *fast_[i]; }
  Channel& slow_channel(u32 i) { return *slow_[i]; }

  /// Peak bandwidths in GB/s (for reports and sanity checks).
  double fast_peak_gbps() const;
  double slow_peak_gbps() const;

  /// Checkpoint support: issued counters plus every channel (facade and
  /// timing backend).
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  MemSystemConfig cfg_;
  std::vector<std::unique_ptr<Channel>> fast_;  ///< one per superchannel
  std::vector<std::unique_ptr<Channel>> slow_;
  std::vector<u64> issued_fast_;  ///< per superchannel, reset with reset_stats()
  std::vector<u64> issued_slow_;  ///< per slow channel
};

}  // namespace h2
