#include "cache/hierarchy.h"

#include <algorithm>

#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

HierarchyConfig HierarchyConfig::scaled(u32 factor) const {
  H2_ASSERT(factor >= 1, "scale factor must be >= 1");
  HierarchyConfig cfg = *this;
  auto shrink = [&](CacheConfig& c) {
    c.size_bytes = std::max<u64>(c.size_bytes / factor,
                                 static_cast<u64>(c.ways) * c.line_bytes);
  };
  shrink(cfg.cpu_l1);
  shrink(cfg.cpu_l2);
  shrink(cfg.gpu_l1);
  shrink(cfg.llc);
  return cfg;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg) : cfg_(cfg) {
  for (u32 i = 0; i < cfg.cpu_cores; ++i) {
    cpu_l1_.push_back(std::make_unique<Cache>(cfg.cpu_l1));
    cpu_l2_.push_back(std::make_unique<Cache>(cfg.cpu_l2));
  }
  for (u32 i = 0; i < cfg.gpu_clusters; ++i) {
    gpu_l1_.push_back(std::make_unique<Cache>(cfg.gpu_l1));
  }
  llc_ = std::make_unique<Cache>(cfg.llc);
}

HierarchyResult CacheHierarchy::llc_fill(Addr addr, bool is_write, u32 latency_so_far) {
  HierarchyResult res;
  res.latency = latency_so_far + llc_->latency();
  const Cache::AccessResult llc = llc_->access(addr, is_write);
  if (!llc.hit) {
    res.memory_needed = true;
    if (llc.victim_valid && llc.victim_dirty) {
      res.writeback = true;
      res.writeback_addr = llc.victim_addr;
    }
  }
  return res;
}

HierarchyResult CacheHierarchy::cpu_access(u32 core, Addr addr, bool is_write) {
  H2_ASSERT(core < cpu_l1_.size(), "cpu core %u out of range", core);
  u32 latency = cpu_l1_[core]->latency();
  if (cpu_l1_[core]->access(addr, is_write).hit) {
    return HierarchyResult{latency, false, false, 0};
  }
  latency += cpu_l2_[core]->latency();
  if (cpu_l2_[core]->access(addr, is_write).hit) {
    return HierarchyResult{latency, false, false, 0};
  }
  llc_accesses_[0]++;
  HierarchyResult res = llc_fill(addr, is_write, latency);
  if (!res.memory_needed) llc_hits_[0]++;
  return res;
}

HierarchyResult CacheHierarchy::gpu_access(u32 cluster, Addr addr, bool is_write) {
  H2_ASSERT(cluster < gpu_l1_.size(), "gpu cluster %u out of range", cluster);
  u32 latency = gpu_l1_[cluster]->latency();
  if (gpu_l1_[cluster]->access(addr, is_write).hit) {
    return HierarchyResult{latency, false, false, 0};
  }
  llc_accesses_[1]++;
  HierarchyResult res = llc_fill(addr, is_write, latency);
  if (!res.memory_needed) llc_hits_[1]++;
  return res;
}

double CacheHierarchy::llc_hit_rate(Requestor r) const {
  const u32 i = static_cast<u32>(r);
  return llc_accesses_[i]
             ? static_cast<double>(llc_hits_[i]) / static_cast<double>(llc_accesses_[i])
             : 0.0;
}

void CacheHierarchy::reset_stats() {
  for (auto& c : cpu_l1_) c->reset_stats();
  for (auto& c : cpu_l2_) c->reset_stats();
  for (auto& c : gpu_l1_) c->reset_stats();
  llc_->reset_stats();
  llc_hits_[0] = llc_hits_[1] = llc_accesses_[0] = llc_accesses_[1] = 0;
}

void CacheHierarchy::save(ckpt::CkptWriter& w) const {
  for (const auto& c : cpu_l1_) c->save(w);
  for (const auto& c : cpu_l2_) c->save(w);
  for (const auto& c : gpu_l1_) c->save(w);
  llc_->save(w);
  for (const u64 v : llc_hits_) w.put_u64(v);
  for (const u64 v : llc_accesses_) w.put_u64(v);
}

void CacheHierarchy::load(ckpt::CkptReader& r) {
  for (auto& c : cpu_l1_) c->load(r);
  for (auto& c : cpu_l2_) c->load(r);
  for (auto& c : gpu_l1_) c->load(r);
  llc_->load(r);
  for (u64& v : llc_hits_) v = r.get_u64();
  for (u64& v : llc_accesses_) v = r.get_u64();
}

}  // namespace h2
