#include "cache/cache.h"

#include <bit>

#include "check/check.h"
#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg), sets_(cfg.num_sets()) {
  H2_ASSERT(sets_ >= 1, "cache %s too small for %u ways", cfg.name.c_str(), cfg.ways);
  const size_t n = static_cast<size_t>(sets_) * cfg_.ways;
  tag_.resize(n, kNoTag);
  lru_.resize(n, 0);
  valid_.resize(n, 0);
  dirty_.resize(n, 0);
  mru_.resize(sets_, 0);
  if (std::has_single_bit(cfg_.line_bytes) && std::has_single_bit(sets_)) {
    pow2_ = true;
    line_shift_ = static_cast<u32>(std::countr_zero(cfg_.line_bytes));
    set_shift_ = static_cast<u32>(std::countr_zero(sets_));
  }
}

void Cache::locate(Addr addr, u32& set, Addr& tag) const {
  if (pow2_) {
    const Addr line = addr >> line_shift_;
    set = static_cast<u32>(line & (sets_ - 1));
    tag = line >> set_shift_;
    return;
  }
  const Addr line = addr / cfg_.line_bytes;
  set = static_cast<u32>(line % sets_);
  tag = line / sets_;
}

i64 Cache::find(Addr tag, u32 set) const {
  // Invalid lines carry kNoTag, which no lookup can present (checked in
  // access), so a bare tag compare suffices — no valid_ load per way.
  const size_t base = static_cast<size_t>(set) * cfg_.ways;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (tag_[base + w] == tag) return static_cast<i64>(base + w);
  }
  return -1;
}

Cache::AccessResult Cache::access(Addr addr, bool is_write) {
  u32 set;
  Addr tag;
  locate(addr, set, tag);
  H2_CHECK(1, tag != kNoTag,
           "cache %s: address %llu aliases the invalid-line sentinel tag",
           cfg_.name.c_str(), static_cast<unsigned long long>(addr));

  AccessResult res;
  // MRU-first probe: the matching way is unique (audited), so checking the
  // set's last-hit way first is a pure accelerator — same hit, same way.
  const size_t base = static_cast<size_t>(set) * cfg_.ways;
  i64 hit = static_cast<i64>(base + mru_[set]);
  // Fused scan: one pass finds the matching way AND tracks the victim the
  // separate LRU loop used to pick (first invalid way — detected via the
  // sentinel tag — else the first strict-minimum LRU among the valid ways
  // before it, which is all of them when no invalid way exists). The victim
  // is only consumed on a miss, where the pass never broke early, so the
  // choice is identical to the two-loop version.
  size_t victim = base;
  bool invalid_found = false;
  if (tag_[hit] != tag) {
    hit = -1;
    for (u32 w = 0; w < cfg_.ways; ++w) {
      const Addr t = tag_[base + w];
      if (t == tag) {
        hit = static_cast<i64>(base + w);
        break;
      }
      if (invalid_found) continue;
      if (t == kNoTag) {
        victim = base + w;
        invalid_found = true;
      } else if (lru_[base + w] < lru_[victim]) {
        victim = base + w;
      }
    }
  }
  if (hit >= 0) {
    lru_[hit] = ++stamp_;
    dirty_[hit] |= static_cast<u8>(is_write);
    hits_++;
    mru_[set] = static_cast<u32>(hit - static_cast<i64>(base));
    res.hit = true;
    return res;
  }

  misses_++;
  if (valid_[victim]) {
    res.victim_valid = true;
    res.victim_dirty = dirty_[victim] != 0;
    res.victim_addr = (tag_[victim] * sets_ + set) * cfg_.line_bytes;
    if (dirty_[victim]) writebacks_++;
  }
  valid_[victim] = 1;
  dirty_[victim] = static_cast<u8>(is_write);
  tag_[victim] = tag;
  lru_[victim] = ++stamp_;
  mru_[set] = static_cast<u32>(victim - base);
  return res;
}

u64 Cache::resident_lines() const {
  u64 count = 0;
  for (const u8 v : valid_) count += v ? 1 : 0;
  return count;
}

std::vector<Addr> Cache::resident_addrs() const {
  std::vector<Addr> addrs;
  for (u32 set = 0; set < sets_; ++set) {
    const size_t base = static_cast<size_t>(set) * cfg_.ways;
    for (u32 w = 0; w < cfg_.ways; ++w) {
      if (valid_[base + w]) addrs.push_back((tag_[base + w] * sets_ + set) * cfg_.line_bytes);
    }
  }
  return addrs;
}

void Cache::audit() const {
  if (!H2_CHECK_ACTIVE(2)) return;
  for (u32 set = 0; set < sets_; ++set) {
    const size_t base = static_cast<size_t>(set) * cfg_.ways;
    for (u32 w = 0; w < cfg_.ways; ++w) {
      // Sentinel invariant behind the validity-free tag scan: invalid lines
      // hold kNoTag and nothing else does.
      H2_CHECK(2, (valid_[base + w] != 0) == (tag_[base + w] != kNoTag),
               "cache %s: set %u way %u %s but tag is %s the sentinel",
               cfg_.name.c_str(), set, w,
               valid_[base + w] ? "valid" : "invalid",
               tag_[base + w] == kNoTag ? "" : "not");
      if (!valid_[base + w]) continue;
      for (u32 v = w + 1; v < cfg_.ways; ++v) {
        H2_CHECK(2, !(valid_[base + v] && tag_[base + v] == tag_[base + w]),
                 "cache %s: duplicate tag %llu in set %u (ways %u and %u)",
                 cfg_.name.c_str(),
                 static_cast<unsigned long long>(tag_[base + w]), set, w, v);
      }
    }
  }
}

bool Cache::probe(Addr addr) const {
  u32 set;
  Addr tag;
  locate(addr, set, tag);
  return find(tag, set) >= 0;
}

bool Cache::invalidate(Addr addr) {
  u32 set;
  Addr tag;
  locate(addr, set, tag);
  if (const i64 idx = find(tag, set); idx >= 0) {
    const bool was_dirty = dirty_[idx] != 0;
    valid_[idx] = 0;
    dirty_[idx] = 0;
    tag_[idx] = kNoTag;
    return was_dirty;
  }
  return false;
}

void Cache::save(ckpt::CkptWriter& w) const {
  w.put_pod_vec(tag_);
  w.put_pod_vec(lru_);
  w.put_pod_vec(valid_);
  w.put_pod_vec(dirty_);
  w.put_pod_vec(mru_);
  w.put_u64(stamp_);
  w.put_u64(hits_);
  w.put_u64(misses_);
  w.put_u64(writebacks_);
}

void Cache::load(ckpt::CkptReader& r) {
  r.get_pod_vec_exact(tag_);
  r.get_pod_vec_exact(lru_);
  r.get_pod_vec_exact(valid_);
  r.get_pod_vec_exact(dirty_);
  r.get_pod_vec_exact(mru_);
  stamp_ = r.get_u64();
  hits_ = r.get_u64();
  misses_ = r.get_u64();
  writebacks_ = r.get_u64();
  for (u32 set = 0; set < sets_; ++set) {
    if (mru_[set] >= cfg_.ways) {
      r.fail("cache " + cfg_.name + ": MRU way out of range in set " +
             std::to_string(set));
    }
  }
  audit();
}

}  // namespace h2
