#include "cache/cache.h"

#include "check/check.h"
#include "common/assert.h"

namespace h2 {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg), sets_(cfg.num_sets()) {
  H2_ASSERT(sets_ >= 1, "cache %s too small for %u ways", cfg.name.c_str(), cfg.ways);
  lines_.resize(static_cast<size_t>(sets_) * cfg_.ways);
}

Cache::Line* Cache::find(Addr tag, u32 set) {
  Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

Cache::AccessResult Cache::access(Addr addr, bool is_write) {
  const Addr line = addr / cfg_.line_bytes;
  const u32 set = static_cast<u32>(line % sets_);
  const Addr tag = line / sets_;

  AccessResult res;
  if (Line* hit = find(tag, set)) {
    hit->lru = ++stamp_;
    hit->dirty |= is_write;
    hits_++;
    res.hit = true;
    return res;
  }

  misses_++;
  // Choose LRU victim (invalid lines first).
  Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
  Line* victim = &base[0];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) {
    res.victim_valid = true;
    res.victim_dirty = victim->dirty;
    res.victim_addr = (victim->tag * sets_ + set) * cfg_.line_bytes;
    if (victim->dirty) writebacks_++;
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = ++stamp_;
  return res;
}

u64 Cache::resident_lines() const {
  u64 count = 0;
  for (const Line& l : lines_) count += l.valid ? 1 : 0;
  return count;
}

std::vector<Addr> Cache::resident_addrs() const {
  std::vector<Addr> addrs;
  for (u32 set = 0; set < sets_; ++set) {
    const Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
    for (u32 w = 0; w < cfg_.ways; ++w) {
      if (base[w].valid) addrs.push_back((base[w].tag * sets_ + set) * cfg_.line_bytes);
    }
  }
  return addrs;
}

void Cache::audit() const {
  if (!H2_CHECK_ACTIVE(2)) return;
  for (u32 set = 0; set < sets_; ++set) {
    const Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
    for (u32 w = 0; w < cfg_.ways; ++w) {
      if (!base[w].valid) continue;
      for (u32 v = w + 1; v < cfg_.ways; ++v) {
        H2_CHECK(2, !(base[v].valid && base[v].tag == base[w].tag),
                 "cache %s: duplicate tag %llu in set %u (ways %u and %u)",
                 cfg_.name.c_str(),
                 static_cast<unsigned long long>(base[w].tag), set, w, v);
      }
    }
  }
}

bool Cache::probe(Addr addr) const {
  const Addr line = addr / cfg_.line_bytes;
  const u32 set = static_cast<u32>(line % sets_);
  const Addr tag = line / sets_;
  const Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(Addr addr) {
  const Addr line = addr / cfg_.line_bytes;
  const u32 set = static_cast<u32>(line % sets_);
  const Addr tag = line / sets_;
  if (Line* l = find(tag, set)) {
    const bool was_dirty = l->dirty;
    l->valid = false;
    l->dirty = false;
    return was_dirty;
  }
  return false;
}

}  // namespace h2
