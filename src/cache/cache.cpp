#include "cache/cache.h"

#include "common/assert.h"

namespace h2 {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg), sets_(cfg.num_sets()) {
  H2_ASSERT(sets_ >= 1, "cache %s too small for %u ways", cfg.name.c_str(), cfg.ways);
  lines_.resize(static_cast<size_t>(sets_) * cfg_.ways);
}

Cache::Line* Cache::find(Addr tag, u32 set) {
  Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

Cache::AccessResult Cache::access(Addr addr, bool is_write) {
  const Addr line = addr / cfg_.line_bytes;
  const u32 set = static_cast<u32>(line % sets_);
  const Addr tag = line / sets_;

  AccessResult res;
  if (Line* hit = find(tag, set)) {
    hit->lru = ++stamp_;
    hit->dirty |= is_write;
    hits_++;
    res.hit = true;
    return res;
  }

  misses_++;
  // Choose LRU victim (invalid lines first).
  Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
  Line* victim = &base[0];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) {
    res.victim_valid = true;
    res.victim_dirty = victim->dirty;
    res.victim_addr = (victim->tag * sets_ + set) * cfg_.line_bytes;
    if (victim->dirty) writebacks_++;
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = ++stamp_;
  return res;
}

bool Cache::probe(Addr addr) const {
  const Addr line = addr / cfg_.line_bytes;
  const u32 set = static_cast<u32>(line % sets_);
  const Addr tag = line / sets_;
  const Line* base = &lines_[static_cast<size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(Addr addr) {
  const Addr line = addr / cfg_.line_bytes;
  const u32 set = static_cast<u32>(line % sets_);
  const Addr tag = line / sets_;
  if (Line* l = find(tag, set)) {
    const bool was_dirty = l->dirty;
    l->valid = false;
    l->dirty = false;
    return was_dirty;
  }
  return false;
}

}  // namespace h2
