// Generic set-associative SRAM cache model (functional hit/miss + fixed
// latency). Used for CPU L1/L2, GPU L1, and the shared LLC. The model tracks
// dirty state so that LLC evictions generate memory writebacks, which matter
// for slow-memory traffic amplification (paper Section IV-B).
//
// The line metadata is stored struct-of-arrays: the tag scan on every access
// touches only the tag/valid arrays instead of dragging full line structs
// through the cache, which matters because Cache::access dominates the DES
// hot loop (one L1+L2 walk per core access). The layout is a pure
// representation change — hit/miss results, victim choice (first invalid way,
// else first-minimum LRU) and all counters are bit-identical to the previous
// array-of-structs model.
#pragma once

#include <string>
#include <vector>

#include "common/ckpt_fwd.h"
#include "common/types.h"

namespace h2 {

struct CacheConfig {
  std::string name = "cache";
  u64 size_bytes = 64 * 1024;
  u32 ways = 8;
  u32 line_bytes = 64;
  u32 latency = 4;  ///< hit latency in core cycles

  u32 num_sets() const { return static_cast<u32>(size_bytes / (static_cast<u64>(ways) * line_bytes)); }
};

class Cache {
 public:
  struct AccessResult {
    bool hit = false;
    bool victim_valid = false;  ///< a line was evicted on miss-fill
    bool victim_dirty = false;
    Addr victim_addr = 0;       ///< byte address of the evicted line
  };

  explicit Cache(const CacheConfig& cfg);

  /// Looks up `addr`; on miss, allocates the line (write-allocate) and
  /// reports the victim. `is_write` marks the line dirty.
  AccessResult access(Addr addr, bool is_write);

  /// Looks up without allocation (for bypassing designs).
  bool probe(Addr addr) const;

  /// Drops a line if present; returns true if it was dirty.
  bool invalidate(Addr addr);

  const CacheConfig& config() const { return cfg_; }
  u32 latency() const { return cfg_.latency; }

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 writebacks() const { return writebacks_; }

  /// Number of valid lines currently resident.
  u64 resident_lines() const;

  /// Byte addresses of every resident line (line-aligned). Audit/debug use
  /// only: O(capacity).
  std::vector<Addr> resident_addrs() const;

  /// Duplicate-tag audit (H2_CHECK level 2): a tag may appear at most once
  /// per set, or lookups become order-dependent. O(ways^2) per set.
  void audit() const;
  double hit_rate() const {
    const u64 total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  void reset_stats() { hits_ = misses_ = writebacks_ = 0; }

  /// Checkpoint support: line metadata (tags, LRU, valid/dirty, MRU way),
  /// the LRU stamp and the counters. Geometry is rebuilt from config, so
  /// restore cross-checks the stored array sizes against the live ones.
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  /// Tag stored by invalid lines. Unreachable by real lookups: it would
  /// need an address past 2^64 / sets bytes. find() relies on this to skip
  /// the per-way valid check, and access() H2_CHECKs the lookup tag.
  static constexpr Addr kNoTag = ~0ull;

  /// -1 when not resident, else the line index (set * ways + w).
  i64 find(Addr tag, u32 set) const;

  /// Splits `addr` into (set, tag); both geometries are usually powers of
  /// two, so the division strength-reduces to shift/mask when it can.
  void locate(Addr addr, u32& set, Addr& tag) const;

  CacheConfig cfg_;
  u32 sets_;
  u32 line_shift_ = 0;  ///< log2(line_bytes) when a power of two, else 0
  u32 set_shift_ = 0;   ///< log2(sets) when a power of two, else 0
  bool pow2_ = false;   ///< both line_bytes and sets are powers of two

  // Struct-of-arrays line metadata, indexed by set * ways + w.
  std::vector<Addr> tag_;
  std::vector<u64> lru_;
  std::vector<u8> valid_;
  std::vector<u8> dirty_;
  // Last way hit or filled per set: a pure lookup accelerator (the matching
  // way is unique), checked before the full tag scan.
  std::vector<u32> mru_;

  u64 stamp_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 writebacks_ = 0;
};

}  // namespace h2
