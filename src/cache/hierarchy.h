// The on-chip cache hierarchy of the heterogeneous processor (paper Table I):
// per-CPU-core L1 + L2, per-GPU-cluster L1 (one cluster = 16 EUs sharing
// 128 kB), and a shared LLC in front of the hybrid memory. The hierarchy is
// purely functional + fixed latency; everything below the LLC is handled by
// the hybrid memory controller.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "common/types.h"

namespace h2 {

struct HierarchyConfig {
  u32 cpu_cores = 8;
  u32 gpu_clusters = 6;  ///< 96 EUs / 16 per cluster

  CacheConfig cpu_l1{.name = "cpu_l1", .size_bytes = 64 * 1024, .ways = 8, .line_bytes = 64, .latency = 4};
  CacheConfig cpu_l2{.name = "cpu_l2", .size_bytes = 1024 * 1024, .ways = 8, .line_bytes = 64, .latency = 9};
  CacheConfig gpu_l1{.name = "gpu_l1", .size_bytes = 128 * 1024, .ways = 8, .line_bytes = 64, .latency = 6};
  CacheConfig llc{.name = "llc", .size_bytes = 16 * 1024 * 1024, .ways = 16, .line_bytes = 64, .latency = 38};

  /// Divides all capacities by `factor` (footprint-scaled simulation; the
  /// relative geometry of Table I is preserved).
  HierarchyConfig scaled(u32 factor) const;
};

/// Outcome of walking the on-chip hierarchy for one access.
struct HierarchyResult {
  u32 latency = 0;          ///< cycles spent in SRAM levels
  bool memory_needed = false;  ///< LLC miss: the demand line must come from memory
  bool writeback = false;      ///< a dirty LLC victim must be written to memory
  Addr writeback_addr = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& cfg);

  HierarchyResult cpu_access(u32 core, Addr addr, bool is_write);
  HierarchyResult gpu_access(u32 cluster, Addr addr, bool is_write);

  const HierarchyConfig& config() const { return cfg_; }
  Cache& llc() { return *llc_; }
  const Cache& cpu_l1(u32 core) const { return *cpu_l1_[core]; }
  const Cache& cpu_l2(u32 core) const { return *cpu_l2_[core]; }
  const Cache& gpu_l1(u32 cluster) const { return *gpu_l1_[cluster]; }

  /// Aggregate LLC hit rate split by requestor.
  double llc_hit_rate(Requestor r) const;
  /// Raw LLC counters behind llc_hit_rate(): shard groups merge members'
  /// counts before forming the global rate (a mean of per-shard rates would
  /// weight shards equally regardless of traffic).
  u64 llc_hits(Requestor r) const { return llc_hits_[static_cast<u32>(r)]; }
  u64 llc_accesses(Requestor r) const { return llc_accesses_[static_cast<u32>(r)]; }
  void reset_stats();

  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  HierarchyResult llc_fill(Addr addr, bool is_write, u32 latency_so_far);

  HierarchyConfig cfg_;
  std::vector<std::unique_ptr<Cache>> cpu_l1_;
  std::vector<std::unique_ptr<Cache>> cpu_l2_;
  std::vector<std::unique_ptr<Cache>> gpu_l1_;
  std::unique_ptr<Cache> llc_;
  u64 llc_hits_[2] = {0, 0};
  u64 llc_accesses_[2] = {0, 0};
};

}  // namespace h2
